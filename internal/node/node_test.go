package node

import (
	"testing"
	"time"

	"cosplit/internal/obs"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// testWorkload is a small FT-transfer population: every node replica
// provisions it identically (deterministic genesis).
func testWorkload() *workload.Workload {
	w := workload.FTTransfer()
	w.Users = 40
	return w
}

func testGenesis(w *workload.Workload) Genesis {
	return func() (*shard.Network, error) {
		env, err := workload.Provision(w, true, shard.WithShards(3))
		if err != nil {
			return nil, err
		}
		return env.Net, nil
	}
}

// TestCrossModeStateRoots is the tentpole's acceptance test: the same
// transaction stream driven through the monolithic shard.Network and
// through byte-shipped epochs over the channel transport commits
// bit-identical state roots every epoch.
func TestCrossModeStateRoots(t *testing.T) {
	w := testWorkload()
	envMono, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	// A second provisioned environment generates the identical stream
	// for the cluster (same seed, same client-side nonce tracking).
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(testGenesis(w))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const epochs, perEpoch = 5, 25
	var lastID uint64
	for e := 0; e < epochs; e++ {
		for i := 0; i < perEpoch; i++ {
			idM := envMono.Net.Submit(w.Next(envMono))
			idC, err := cluster.Lookup.SubmitTx(w.Next(envSrc))
			if err != nil {
				t.Fatalf("epoch %d: submit over wire: %v", e, err)
			}
			if idM != idC {
				t.Fatalf("epoch %d: tx id skew: monolithic %d, cluster %d", e, idM, idC)
			}
			lastID = idC
		}
		if _, err := envMono.Net.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		res := cluster.Tick()
		if res.Err != nil {
			t.Fatalf("epoch %d: tick: %v", e, res.Err)
		}
		if res.Stats.ViewChanges != 0 {
			t.Fatalf("epoch %d: unexpected transport losses: %+v", e, res.Stats)
		}
		if want := envMono.Net.StateRoot(); res.Root != want {
			t.Fatalf("epoch %d: state root diverged:\n  cluster    %s\n  monolithic %s", e, res.Root, want)
		}
	}

	// Receipts flow back to the lookup via FinalBlock broadcasts and
	// match the monolithic run's.
	rc := cluster.Lookup.WaitReceipt(lastID, 5*time.Second)
	if rc == nil {
		t.Fatalf("receipt for tx %d never reached the lookup", lastID)
	}
	rm := envMono.Net.Receipt(lastID)
	if rm == nil || rc.Success != rm.Success || rc.Shard != rm.Shard || rc.Epoch != rm.Epoch {
		t.Fatalf("receipt skew: cluster %+v, monolithic %+v", rc, rm)
	}
	if epoch, root := cluster.Lookup.Chain(); epoch == 0 || root == "" {
		t.Fatalf("lookup chain view empty: epoch %d, root %q", epoch, root)
	}

	// State queries over the wire agree with canonical state.
	st, found, err := cluster.Lookup.GetAccount(envSrc.Users[0])
	if err != nil || !found {
		t.Fatalf("GetAccount: %v (found=%v)", err, found)
	}
	acc := envMono.Net.Accounts.Get(envSrc.Users[0])
	if st.Balance.Cmp(acc.Balance) != 0 || st.Nonce != acc.Nonce {
		t.Fatalf("account skew: wire %+v, monolithic %+v", st, acc)
	}
	resp, err := cluster.Lookup.GetState(envSrc.Contract, "balances", "")
	if err != nil || !resp.Found || resp.Value == nil {
		t.Fatalf("GetState(balances): %+v, %v", resp, err)
	}

	// After shutdown (which drains in-flight FinalBlocks) every shard
	// replica converged on the same root, with no skew or divergence.
	want := cluster.DS.Net().StateRoot()
	cluster.Close()
	for _, s := range cluster.Shards {
		if err := s.Err(); err != nil {
			t.Errorf("%s: replica error: %v", s.name, err)
		}
		if got := s.Net().StateRoot(); got != want {
			t.Errorf("%s: replica root %s, want %s", s.name, got, want)
		}
	}
}

// TestTransportFaultRecovery drops a third of the shard nodes'
// outbound frames (their MicroBlocks): the DS committee must requeue
// the lost batches and eventually commit everything, and the replicas
// must stay bit-identical to the canonical state.
func TestTransportFaultRecovery(t *testing.T) {
	w := testWorkload()
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cluster, err := NewCluster(testGenesis(w),
		ClusterDS(DSCollectTimeout(250*time.Millisecond)),
		ClusterShardNodes(
			ShardObs(reg, nil),
			ShardFaults(LinkFaults{Seed: 42, Drop: 0.35}),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Pace submissions over several epochs: with 3 shards sending one
	// MicroBlock each per epoch at 35% drop, ten epochs make a dropped
	// frame (and its recovery) a statistical certainty.
	const epochs, perEpoch = 10, 4
	const total = epochs * perEpoch
	submitted, committed, viewChanges := 0, 0, 0
	for e := 0; e < 60 && committed < total; e++ {
		for i := 0; i < perEpoch && submitted < total; i++ {
			if _, err := cluster.Lookup.SubmitTx(w.Next(envSrc)); err != nil {
				t.Fatal(err)
			}
			submitted++
		}
		res := cluster.Tick()
		if res.Err != nil {
			t.Fatalf("tick %d: %v", e, res.Err)
		}
		committed += res.Stats.Committed
		viewChanges += res.Stats.ViewChanges
	}
	if committed != total {
		t.Fatalf("committed %d of %d after recovery", committed, total)
	}
	if viewChanges == 0 {
		t.Error("no view changes despite 35% frame drop — faults not injected?")
	}
	snap := reg.Snapshot()
	if snap.Counters["wire.frames_dropped"] == 0 {
		t.Error("wire.frames_dropped = 0")
	}
	if snap.Counters["wire.frames_sent"] == 0 {
		t.Error("wire.frames_sent = 0")
	}

	want := cluster.DS.Net().StateRoot()
	cluster.Close()
	for _, s := range cluster.Shards {
		if err := s.Err(); err != nil {
			t.Errorf("%s: replica error: %v", s.name, err)
		}
		if got := s.Net().StateRoot(); got != want {
			t.Errorf("%s: replica root %s, want %s", s.name, got, want)
		}
	}
}

// TestCorruptedFramesRejected corrupts shard MicroBlock payloads in
// transit: the DS decoder must reject them (transport loss recovery),
// never misparse them.
func TestCorruptedFramesRejected(t *testing.T) {
	w := testWorkload()
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(testGenesis(w),
		ClusterDS(DSCollectTimeout(250*time.Millisecond)),
		ClusterShardNodes(ShardFaults(LinkFaults{Seed: 7, Corrupt: 0.5})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const epochs, perEpoch = 6, 5
	const total = epochs * perEpoch
	submitted, committed := 0, 0
	for e := 0; e < 60 && committed < total; e++ {
		for i := 0; i < perEpoch && submitted < total; i++ {
			if _, err := cluster.Lookup.SubmitTx(w.Next(envSrc)); err != nil {
				t.Fatal(err)
			}
			submitted++
		}
		res := cluster.Tick()
		if res.Err != nil {
			t.Fatalf("tick %d: %v", e, res.Err)
		}
		committed += res.Stats.Committed
	}
	if committed != total {
		t.Fatalf("committed %d of %d under corruption", committed, total)
	}
	want := cluster.DS.Net().StateRoot()
	cluster.Close()
	for _, s := range cluster.Shards {
		if err := s.Err(); err != nil {
			t.Errorf("%s: replica error: %v", s.name, err)
		}
		if got := s.Net().StateRoot(); got != want {
			t.Errorf("%s: replica root %s, want %s", s.name, got, want)
		}
	}
}

// TestTCPClusterSmoke runs a short cluster over real TCP sockets and
// cross-checks its roots against the monolithic pipeline.
func TestTCPClusterSmoke(t *testing.T) {
	w := testWorkload()
	envMono, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(testGenesis(w), ClusterTCP("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for e := 0; e < 2; e++ {
		for i := 0; i < 15; i++ {
			envMono.Net.Submit(w.Next(envMono))
			if _, err := cluster.Lookup.SubmitTx(w.Next(envSrc)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := envMono.Net.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		res := cluster.Tick()
		if res.Err != nil {
			t.Fatalf("tick %d: %v", e, res.Err)
		}
		if want := envMono.Net.StateRoot(); res.Root != want {
			t.Fatalf("epoch %d: TCP root %s, monolithic %s", e, res.Root, want)
		}
	}
}
