package node

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"cosplit/internal/wire"
)

// The TCP transport is a star: every node dials a central hub (the
// simulator's stand-in for the peer-to-peer gossip layer), announces
// its name, waits for the hub to echo it back (the registration ack),
// and the hub switches envelopes between connections. An envelope is
// a length-prefixed peer name followed by one raw wire frame:
//
//	nameLen(2, big endian) | name | frame
//
// On the way in the name is the destination; on the way out it is the
// source. The hub validates only frame headers (via
// wire.ReadRawFrame), so corrupted payloads pass through to the
// receiving decoder exactly as a faulty network would deliver them.

const maxPeerName = 256

// TCPHub is the central frame switch of the TCP transport.
type TCPHub struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[string]*hubConn
	closed bool
	wg     sync.WaitGroup
}

type hubConn struct {
	name string
	c    net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer
}

// ListenTCP starts a hub on addr (use "127.0.0.1:0" for an ephemeral
// test port).
func ListenTCP(addr string) (*TCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &TCPHub{ln: ln, conns: make(map[string]*hubConn)}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address, suitable for DialTCP.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// Close stops the hub and severs every connection.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := make([]*hubConn, 0, len(h.conns))
	for _, hc := range h.conns {
		conns = append(conns, hc)
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, hc := range conns {
		hc.c.Close()
	}
	h.wg.Wait()
	return err
}

func (h *TCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return
		}
		// The Add must be ordered against Close's Wait: an accept that
		// lands between the listener close and the wait would otherwise
		// Add after Wait began. Close sets closed under the same lock
		// before it waits, so either we see closed here and drop the
		// conn, or Close sees our Add.
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			c.Close()
			continue
		}
		h.wg.Add(1)
		h.mu.Unlock()
		go h.serve(c)
	}
}

func (h *TCPHub) serve(c net.Conn) {
	defer h.wg.Done()
	br := bufio.NewReader(c)
	name, err := readName(br)
	if err != nil {
		c.Close()
		return
	}
	hc := &hubConn{name: name, c: c, bw: bufio.NewWriter(c)}
	h.mu.Lock()
	if h.closed || h.conns[name] != nil {
		h.mu.Unlock()
		c.Close()
		return
	}
	h.conns[name] = hc
	h.mu.Unlock()
	// Ack registration by echoing the name: DialTCP blocks on this, so a
	// returned endpoint is already routable and its peers' first frames
	// cannot race the hub's routing-table insert.
	if err := hc.writeAck(); err != nil {
		h.mu.Lock()
		delete(h.conns, name)
		h.mu.Unlock()
		c.Close()
		return
	}
	defer func() {
		h.mu.Lock()
		if h.conns[name] == hc {
			delete(h.conns, name)
		}
		h.mu.Unlock()
		c.Close()
	}()
	for {
		to, frame, err := readEnvelope(br)
		if err != nil {
			return
		}
		h.mu.Lock()
		dst := h.conns[to]
		h.mu.Unlock()
		if dst == nil {
			continue // best-effort: unknown destinations drop
		}
		if err := dst.writeEnvelope(name, frame); err != nil {
			// The destination is dead: drop its routing entry now (not
			// when its read loop notices) so interim senders stop
			// writing into a dead buffered writer. Identity-guarded,
			// like the deferred cleanup — the name may already belong
			// to a reconnected peer.
			dst.c.Close()
			h.mu.Lock()
			if h.conns[dst.name] == dst {
				delete(h.conns, dst.name)
			}
			h.mu.Unlock()
		}
	}
}

func (hc *hubConn) writeAck() error {
	hc.wmu.Lock()
	defer hc.wmu.Unlock()
	if err := writeName(hc.bw, hc.name); err != nil {
		return err
	}
	return hc.bw.Flush()
}

func (hc *hubConn) writeEnvelope(peer string, frame []byte) error {
	hc.wmu.Lock()
	defer hc.wmu.Unlock()
	if err := writeName(hc.bw, peer); err != nil {
		return err
	}
	if _, err := hc.bw.Write(frame); err != nil {
		return err
	}
	return hc.bw.Flush()
}

func writeName(w io.Writer, name string) error {
	if len(name) == 0 || len(name) > maxPeerName {
		return fmt.Errorf("%w: peer name length %d", ErrUnknownPeer, len(name))
	}
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(name)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, name)
	return err
}

func readName(r io.Reader) (string, error) {
	var n [2]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	ln := binary.BigEndian.Uint16(n[:])
	if ln == 0 || ln > maxPeerName {
		return "", fmt.Errorf("%w: peer name length %d", wire.ErrDecode, ln)
	}
	b := make([]byte, ln)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func readEnvelope(r *bufio.Reader) (peer string, frame []byte, err error) {
	if peer, err = readName(r); err != nil {
		return "", nil, err
	}
	if frame, err = wire.ReadRawFrame(r); err != nil {
		return "", nil, err
	}
	return peer, frame, nil
}

// tcpEndpoint is an Endpoint over one hub connection.
type tcpEndpoint struct {
	name string
	c    net.Conn
	br   *bufio.Reader

	wmu    sync.Mutex
	bw     *bufio.Writer
	closed bool
}

// DialTCP connects to a hub and registers under name.
func DialTCP(addr, name string) (Endpoint, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	e := &tcpEndpoint{name: name, c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if err := writeName(e.bw, name); err != nil {
		c.Close()
		return nil, err
	}
	if err := e.bw.Flush(); err != nil {
		c.Close()
		return nil, err
	}
	// Wait for the hub's registration ack (a name echo): once it
	// arrives, this endpoint is in the routing table and other peers can
	// address it.
	echo, err := readName(e.br)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("hub handshake: %w", ErrTransportClosed)
	}
	if echo != name {
		c.Close()
		return nil, fmt.Errorf("hub handshake: registered as %q, asked for %q: %w", echo, name, ErrTransportClosed)
	}
	return e, nil
}

func (e *tcpEndpoint) Name() string { return e.name }

func (e *tcpEndpoint) Send(to string, frame []byte) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.closed {
		return fmt.Errorf("send to %q: %w", to, ErrTransportClosed)
	}
	if err := writeName(e.bw, to); err != nil {
		return err
	}
	if _, err := e.bw.Write(frame); err != nil {
		return fmt.Errorf("send to %q: %w: %v", to, ErrTransportClosed, err)
	}
	if err := e.bw.Flush(); err != nil {
		return fmt.Errorf("send to %q: %w: %v", to, ErrTransportClosed, err)
	}
	return nil
}

func (e *tcpEndpoint) Recv() (string, []byte, error) {
	from, frame, err := readEnvelope(e.br)
	if err != nil {
		if err == io.EOF || errors.Is(err, net.ErrClosed) {
			return "", nil, ErrTransportClosed
		}
		if errors.Is(err, wire.ErrDecode) || errors.Is(err, wire.ErrVersionSkew) {
			// A framing error on a stream is unrecoverable: without a
			// trustworthy length field there is no next-frame boundary.
			return "", nil, fmt.Errorf("%w: %v", ErrTransportClosed, err)
		}
		return "", nil, fmt.Errorf("%w: %v", ErrTransportClosed, err)
	}
	return from, frame, nil
}

func (e *tcpEndpoint) Close() error {
	e.wmu.Lock()
	e.closed = true
	e.wmu.Unlock()
	return e.c.Close()
}
