package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cosplit/internal/shard"
	"cosplit/internal/wire"
)

// Blocks returns the journaled FinalBlocks with epochs in [from, to),
// in ascending epoch order. Only blocks still in the journal are
// servable: a snapshot compaction truncates the journal, so epochs at
// or before the last snapshot come back empty (the caller — the DS
// committee serving a replica catch-up — falls back to its in-memory
// ring for recent epochs and reports an unservable gap otherwise).
// The result may therefore start after from or end before to; blocks
// that are present are contiguous. A torn journal tail ends the scan
// at the last valid frame, exactly as recovery does.
func (s *Store) Blocks(from, to uint64) ([]*shard.FinalBlock, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil, errors.New("store: closed")
	}
	// The journal handle is positioned for append; flush pending
	// writes and scan through an independent read-only handle so the
	// writer's offset is untouched.
	if err := s.w.Flush(); err != nil {
		return nil, fmt.Errorf("store: blocks: %w", err)
	}
	f, err := os.Open(filepath.Join(s.dir, journalName))
	if err != nil {
		return nil, fmt.Errorf("store: blocks: %w", err)
	}
	defer f.Close()
	var blocks []*shard.FinalBlock
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		typ, payload, err := wire.ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			if errors.Is(err, wire.ErrDecode) {
				break // torn tail: serve what is durably journaled
			}
			return nil, fmt.Errorf("store: blocks: %w", err)
		}
		if typ != wire.MsgCheckpointBlock {
			break
		}
		cb, err := wire.DecodeCheckpointBlock(payload)
		if err != nil {
			break
		}
		if cb.Block.Epoch >= from && cb.Block.Epoch < to {
			blocks = append(blocks, cb.Block)
		}
		if cb.Block.Epoch+1 >= to {
			break
		}
	}
	return blocks, nil
}
