package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cosplit/internal/pager"
	"cosplit/internal/shard"
	"cosplit/internal/wire"
)

// pagesDirName is the paged-state subdirectory inside a state dir.
const pagesDirName = "pages"

// WithPagedState turns the store's state dumps into a paged,
// disk-backed backing store: instead of materialising full
// snapshot-<E>.snap files, the state lives in a <dir>/pages/ directory
// of account and contract page files behind an LRU cache of at most
// budget bytes (0 means pager.DefaultBudget). On snapshot boundaries
// the store flushes dirty pages and commits the page index where it
// would have written a snapshot; recovery rebuilds the root by
// streaming pages through the cache, never holding the full state in
// memory. Recover also adopts the network's account table and
// contracts onto the pager — call it even on a fresh directory.
// Extra pager options (page count, registry) pass through.
func WithPagedState(budget int64, popts ...pager.Option) Option {
	return func(s *Store) {
		s.paged = true
		s.pagedBudget = budget
		s.pagedOpts = popts
	}
}

// Pager returns the paged-state backing store, or nil when the store
// is in snapshot mode.
func (s *Store) Pager() *pager.Pager { return s.pager }

// openPager opens the pages/ subdirectory; called at Open time when
// WithPagedState was given.
func (s *Store) openPager() error {
	popts := []pager.Option{pager.WithBudget(s.pagedBudget), pager.WithRegistry(s.reg)}
	popts = append(popts, s.pagedOpts...)
	p, err := pager.Open(filepath.Join(s.dir, pagesDirName), popts...)
	if err != nil {
		return err
	}
	s.pager = p
	return nil
}

// pagedCheckpoint is the paged counterpart of snapshot(): flush dirty
// pages, commit the index at cp, compact the journal. Called with s.mu
// held, between epochs, so canonical state is quiescent.
func (s *Store) pagedCheckpoint(n *shard.Network, cp shard.Checkpoint) error {
	s.pager.Adopt(n.Accounts, n.Contracts)
	if err := s.pager.Flush(cp, n.StateRoot()); err != nil {
		return fmt.Errorf("store: paged flush epoch %d: %w", cp.Epoch, err)
	}
	s.snapshots.Inc()
	return s.compactJournal()
}

// recoverPaged restores n from the page index: adopt the
// freshly-provisioned genesis onto the pager, reset to the committed
// on-disk state, rebuild the root trie by streaming every page through
// the bounded cache, verify it against the index, then replay the
// journal tail. Without an index the genesis state stands and the
// journal replays from the start, exactly like snapshot-mode recovery
// of a snapshotless directory. Called with s.mu held.
func (s *Store) recoverPaged(n *shard.Network) error {
	p := s.pager
	p.Adopt(n.Accounts, n.Contracts)
	cp, root, ok := p.Checkpoint()
	if ok {
		if err := p.ResetToDisk(); err != nil {
			return err
		}
		n.RestoreCheckpoint(cp)
		n.RebuildStateRoots()
		if got := n.StateRoot(); got != root {
			return fmt.Errorf("%w: rebuilt root %s, page index says %s",
				pager.ErrCorruptIndex, got, root)
		}
	}
	return s.replayTail(n)
}

// restorePaged is the read-only paged counterpart of Restore: stream
// the committed pages of another node's directory into n (whatever
// backend n uses), verify the rebuilt root against the index, then
// replay the journal without touching anything. No pager is opened —
// opening one sweeps orphans, and a live node owns that directory.
func restorePaged(dir string, n *shard.Network) error {
	pagesDir := filepath.Join(dir, pagesDirName)
	ix, err := readPageIndex(pagesDir)
	if err != nil {
		return err
	}
	for _, ce := range ix.Contracts {
		page, err := readPageFile(pagesDir, fmt.Sprintf("c%x-%d.pg", ce.Addr[:], ce.Version), wire.MsgContractPage)
		if err != nil {
			return err
		}
		cp, err := wire.DecodeContractPage(page)
		if err != nil {
			return fmt.Errorf("%w: %v", pager.ErrCorruptIndex, err)
		}
		if err := n.RestoreContractState(cp.Addr, cp.Fields); err != nil {
			return fmt.Errorf("store: paged restore: %w", err)
		}
	}
	for _, ae := range ix.Accounts {
		page, err := readPageFile(pagesDir, fmt.Sprintf("a%08x-%d.pg", ae.PageID, ae.Version), wire.MsgAccountPage)
		if err != nil {
			return err
		}
		ap, err := wire.DecodeAccountPage(page)
		if err != nil {
			return fmt.Errorf("%w: %v", pager.ErrCorruptIndex, err)
		}
		for i := range ap.Accounts {
			a := &ap.Accounts[i]
			n.Accounts.Put(a.Addr, a.Balance, a.Nonce, a.IsContract)
		}
	}
	n.RestoreCheckpoint(ix.Checkpoint)
	n.RebuildStateRoots()
	if got := n.StateRoot(); got != ix.Root {
		return fmt.Errorf("%w: restored root %s, page index says %s",
			pager.ErrCorruptIndex, got, ix.Root)
	}
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	_, _, err = replayJournal(f, n, nil)
	return err
}

// hasPagedState reports whether dir holds a committed page index.
func hasPagedState(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, pagesDirName, "pages.idx"))
	return err == nil
}

// readPageIndex reads and decodes pages.idx from a pages directory.
func readPageIndex(pagesDir string) (*wire.PageIndex, error) {
	payload, err := readPageFile(pagesDir, "pages.idx", wire.MsgPageIndex)
	if err != nil {
		return nil, err
	}
	ix, err := wire.DecodePageIndex(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pager.ErrCorruptIndex, err)
	}
	return ix, nil
}

// readPageFile reads one single-frame page file and returns its
// payload after checking the frame type.
func readPageFile(pagesDir, name string, want wire.MsgType) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(pagesDir, name))
	if err != nil {
		return nil, fmt.Errorf("store: paged restore: %w", err)
	}
	typ, payload, rest, err := wire.DecodeFrame(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", pager.ErrCorruptIndex, name, err)
	}
	if typ != want || len(rest) != 0 {
		return nil, fmt.Errorf("%w: %s holds %v record (+%d trailing bytes)",
			pager.ErrCorruptIndex, name, typ, len(rest))
	}
	return payload, nil
}

// compactJournal restarts the journal after a snapshot or paged flush
// has made its contents redundant. Called with s.mu held.
func (s *Store) compactJournal() error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	s.w.Reset(s.f)
	s.journalBytes.Set(0)
	return nil
}

// replayTail replays the journal from the start (skipping epochs the
// restored state already covers) and truncates a torn final frame.
// Called with s.mu held.
func (s *Store) replayTail(n *shard.Network) error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: recover: %w", err)
	}
	_, good, err := replayJournal(s.f, n, s.replayed)
	if err != nil {
		return err
	}
	if err := s.f.Truncate(good); err != nil {
		return fmt.Errorf("store: recover: truncate journal: %w", err)
	}
	if _, err := s.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("store: recover: %w", err)
	}
	s.w.Reset(s.f)
	s.journalBytes.Set(good)
	return nil
}
