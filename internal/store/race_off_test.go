//go:build !race

package store

// raceEnabled reports whether the race detector is compiled in; the
// big-state test skips under it (the detector multiplies memory and
// runtime far past the test's bounds).
const raceEnabled = false
