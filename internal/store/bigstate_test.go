package store

import (
	"math/big"
	"runtime"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/shard"
)

// bigStateUsers is the account population of the large-state test:
// past the paper-scale benchmarks by an order of magnitude, and past
// the point where any O(history) or recompute-the-world implementation
// would blow the memory and time bounds below.
const bigStateUsers = 1_050_000

// heapBound is the allowed live heap after provisioning, running, and
// snapshotting the million-account state. The state itself (accounts,
// incremental root trie) costs a few hundred MB; the bound fails if
// journaling or snapshotting ever buffers O(state) extra copies.
const heapBound = 1600 << 20

// bigStateNetwork provisions the million-account genesis: one funder
// and bigStateUsers accounts. No contract — the test targets the
// account half of the state root and the snapshot encoder's account
// batching, where the volume is.
func bigStateNetwork() *shard.Network {
	n := shard.NewNetwork(shard.WithShards(4), shard.WithConsensusModel(false))
	for i := 0; i < bigStateUsers; i++ {
		n.CreateUser(chain.AddrFromUint(uint64(1000+i)), 1<<40)
	}
	return n
}

// bigStateEpoch submits one deterministic transfer batch (senders
// spread across the population) and runs the epoch.
func bigStateEpoch(t *testing.T, n *shard.Network, k uint64) {
	t.Helper()
	const transfers = 500
	for i := uint64(0); i < transfers; i++ {
		from := chain.AddrFromUint(1000 + (i*2099)%bigStateUsers)
		to := chain.AddrFromUint(1000 + (i*2099+1)%bigStateUsers)
		n.Submit(&chain.Tx{
			Kind: chain.TxTransfer, From: from, To: to, Nonce: k,
			Amount: big.NewInt(3), GasLimit: 1, GasPrice: 1,
		})
	}
	stats, err := n.RunEpoch()
	if err != nil {
		t.Fatalf("epoch %d: %v", k, err)
	}
	if stats.Committed == 0 {
		t.Fatalf("epoch %d committed nothing", k)
	}
}

// TestMillionAccountsBoundedMemory runs the persistent pipeline over a
// 1M+ account state: every epoch journaled and snapshotted, then the
// whole thing recovered into a second process-worth of state, with the
// live heap held under heapBound throughout. This is the tentpole's
// scale proof — the incremental root makes per-epoch sealing O(delta),
// and the store streams snapshots instead of materialising copies.
func TestMillionAccountsBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large-state test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("large-state test skipped under the race detector")
	}
	dir := t.TempDir()

	a := bigStateNetwork()
	st, err := Open(dir, WithSnapshotEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	a.AttachStateStore(st)
	bigStateEpoch(t, a, 1)
	bigStateEpoch(t, a, 2)
	// Measure with the network still live: the bound covers the full
	// working set (accounts, root trie, store buffers), not a cleaned-up
	// remnant.
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > heapBound {
		t.Fatalf("heap %d MB exceeds bound %d MB with 1M-account state",
			ms.HeapAlloc>>20, uint64(heapBound)>>20)
	}
	root, cp := a.StateRoot(), a.Checkpoint()
	runtime.KeepAlive(a)
	t.Logf("heap after 1M-account run: %d MB, root %s", ms.HeapAlloc>>20, root)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover the full state into a second network and hold the root.
	b := bigStateNetwork()
	if err := Restore(dir, b); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := b.Checkpoint(); got != cp {
		t.Fatalf("recovered checkpoint %+v, want %+v", got, cp)
	}
	if got := b.StateRoot(); got != root {
		t.Fatalf("recovered root %s, want %s", got, root)
	}
}
