package store

import (
	"bytes"
	"math/big"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/pager"
	"cosplit/internal/shard"
)

// bigStateUsers is the account population of the large-state test:
// past the paper-scale benchmarks by an order of magnitude, and past
// the point where any O(history) or recompute-the-world implementation
// would blow the memory and time bounds below.
const bigStateUsers = 1_050_000

// heapBound is the allowed live heap after provisioning, running, and
// snapshotting the million-account state. The state itself (accounts,
// incremental root trie) costs a few hundred MB; the bound fails if
// journaling or snapshotting ever buffers O(state) extra copies.
const heapBound = 1600 << 20

// bigStateNetwork provisions the million-account genesis: one funder
// and bigStateUsers accounts. No contract — the test targets the
// account half of the state root and the snapshot encoder's account
// batching, where the volume is.
func bigStateNetwork() *shard.Network {
	n := shard.NewNetwork(shard.WithShards(4), shard.WithConsensusModel(false))
	for i := 0; i < bigStateUsers; i++ {
		n.CreateUser(chain.AddrFromUint(uint64(1000+i)), 1<<40)
	}
	return n
}

// bigStateEpoch submits one deterministic transfer batch (senders
// spread across the population) and runs the epoch.
func bigStateEpoch(t *testing.T, n *shard.Network, k uint64) {
	t.Helper()
	const transfers = 500
	for i := uint64(0); i < transfers; i++ {
		from := chain.AddrFromUint(1000 + (i*2099)%bigStateUsers)
		to := chain.AddrFromUint(1000 + (i*2099+1)%bigStateUsers)
		n.Submit(&chain.Tx{
			Kind: chain.TxTransfer, From: from, To: to, Nonce: k,
			Amount: big.NewInt(3), GasLimit: 1, GasPrice: 1,
		})
	}
	stats, err := n.RunEpoch()
	if err != nil {
		t.Fatalf("epoch %d: %v", k, err)
	}
	if stats.Committed == 0 {
		t.Fatalf("epoch %d committed nothing", k)
	}
}

// TestMillionAccountsBoundedMemory runs the persistent pipeline over a
// 1M+ account state: every epoch journaled and snapshotted, then the
// whole thing recovered into a second process-worth of state, with the
// live heap held under heapBound throughout. This is the tentpole's
// scale proof — the incremental root makes per-epoch sealing O(delta),
// and the store streams snapshots instead of materialising copies.
func TestMillionAccountsBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large-state test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("large-state test skipped under the race detector")
	}
	dir := t.TempDir()

	a := bigStateNetwork()
	st, err := Open(dir, WithSnapshotEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	a.AttachStateStore(st)
	bigStateEpoch(t, a, 1)
	bigStateEpoch(t, a, 2)
	// Measure with the network still live: the bound covers the full
	// working set (accounts, root trie, store buffers), not a cleaned-up
	// remnant.
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > heapBound {
		t.Fatalf("heap %d MB exceeds bound %d MB with 1M-account state",
			ms.HeapAlloc>>20, uint64(heapBound)>>20)
	}
	root, cp := a.StateRoot(), a.Checkpoint()
	runtime.KeepAlive(a)
	t.Logf("heap after 1M-account run: %d MB, root %s", ms.HeapAlloc>>20, root)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover the full state into a second network and hold the root.
	b := bigStateNetwork()
	if err := Restore(dir, b); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := b.Checkpoint(); got != cp {
		t.Fatalf("recovered checkpoint %+v, want %+v", got, cp)
	}
	if got := b.StateRoot(); got != root {
		t.Fatalf("recovered root %s, want %s", got, root)
	}
}

// pagedBudget is the page-cache byte budget of the paged large-state
// gate: deliberately far below the ~134 MB the million-account table
// costs resident, so steady state runs with real eviction pressure.
const pagedBudget = 32 << 20

// pagedHeapBound is the live-heap ceiling of the paged gate. The trie
// (sole root authority, never paged) is the O(accounts) floor; on top
// of it sit the 32 MB page cache and pipeline scratch. The unpaged run
// needs ~339 MB for the same state — the gap is the tentpole's win —
// and scripts/ci.sh additionally runs this test under GOMEMLIMIT so a
// regression shows up as OOM-pressure or a failed assertion rather
// than silent growth.
const pagedHeapBound = 512 << 20

// pagedBigStateNetwork provisions the million-account genesis directly
// onto a pager backend, in sorted address order: sha-derived addresses
// are uniform, so sorted insertion fills one page at a time and the
// population streams to disk as it is created instead of materialising
// in memory first (random-order insertion at a starved budget would
// re-fault and rewrite every page O(population/budget) times).
func pagedBigStateNetwork(t *testing.T, p *pager.Pager, users int) *shard.Network {
	t.Helper()
	n := shard.NewNetwork(shard.WithShards(4), shard.WithConsensusModel(false),
		shard.WithStateBackends(p.Backend(), p))
	addrs := make([]chain.Address, users)
	for i := range addrs {
		addrs[i] = chain.AddrFromUint(uint64(1000 + i))
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	for _, a := range addrs {
		n.CreateUser(a, 1<<40)
	}
	return n
}

// TestMillionAccountsPagedBudget is the beyond-RAM gate: the same
// million-account run as TestMillionAccountsBoundedMemory, but with
// the canonical account table behind a 32 MB page cache — a quarter of
// what the table costs resident. Roots and checkpoints must stay
// bit-identical to the fully resident pipeline, the pager must hold
// its budget, the live heap must stay under pagedHeapBound, and a
// fresh process must recover the state from pages with a cold cache.
func TestMillionAccountsPagedBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("large-state test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("large-state test skipped under the race detector")
	}
	// Reference roots from the fully resident pipeline.
	ref := bigStateNetwork()
	bigStateEpoch(t, ref, 1)
	bigStateEpoch(t, ref, 2)
	refRoot, refCp := ref.StateRoot(), ref.Checkpoint()
	ref = nil
	runtime.GC()

	dir := t.TempDir()
	st, err := Open(dir, WithSnapshotEvery(1), WithPagedState(pagedBudget))
	if err != nil {
		t.Fatal(err)
	}
	p := st.Pager()
	a := pagedBigStateNetwork(t, p, bigStateUsers)
	a.AttachStateStore(st)
	bigStateEpoch(t, a, 1)
	bigStateEpoch(t, a, 2)
	if got := a.StateRoot(); got != refRoot {
		t.Fatalf("paged root %s, resident pipeline %s", got, refRoot)
	}
	if got := a.Checkpoint(); got != refCp {
		t.Fatalf("paged checkpoint %+v, resident pipeline %+v", got, refCp)
	}
	if rb := p.ResidentBytes(); rb > pagedBudget {
		t.Fatalf("resident %d MB exceeds %d MB budget", rb>>20, pagedBudget>>20)
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > pagedHeapBound {
		t.Fatalf("heap %d MB exceeds paged bound %d MB", ms.HeapAlloc>>20, uint64(pagedHeapBound)>>20)
	}
	t.Logf("paged heap with 1M-account state: %d MB (budget %d MB, resident %d MB)",
		ms.HeapAlloc>>20, pagedBudget>>20, p.ResidentBytes()>>20)
	runtime.KeepAlive(a)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold-cache recovery: a fresh process streams every page through
	// the bounded cache to rebuild the root, then holds it.
	st2, err := Open(dir, WithSnapshotEvery(1), WithPagedState(pagedBudget))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b := pagedBigStateNetwork(t, st2.Pager(), bigStateUsers)
	if err := st2.Recover(b); err != nil {
		t.Fatalf("paged recover: %v", err)
	}
	if got := b.StateRoot(); got != refRoot {
		t.Fatalf("recovered root %s, want %s", got, refRoot)
	}
	if got := b.Checkpoint(); got != refCp {
		t.Fatalf("recovered checkpoint %+v, want %+v", got, refCp)
	}
}

// TestTenMillionAccountsPaged is the scale walkthrough's test form: a
// ≥10M-account chain provisioned straight to disk through the pager,
// run and flushed with bounded heap. It costs minutes of trie hashing,
// so it only runs when COSPLIT_BIGSTATE names the population (see
// EXPERIMENTS.md): COSPLIT_BIGSTATE=10000000 go test -run
// TenMillion -timeout 60m ./internal/store/
func TestTenMillionAccountsPaged(t *testing.T) {
	users, _ := strconv.Atoi(os.Getenv("COSPLIT_BIGSTATE"))
	if users < 10_000_000 {
		t.Skip("set COSPLIT_BIGSTATE=10000000 (or more) to run the 10M-account walkthrough")
	}
	dir := t.TempDir()
	st, err := Open(dir, WithSnapshotEvery(1),
		WithPagedState(256<<20, pager.WithPageCount(users/512)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p := st.Pager()
	n := pagedBigStateNetwork(t, p, users)
	n.AttachStateStore(st)
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	t.Logf("heap after provisioning %dM accounts: %d MB (pager resident %d MB)",
		users/1_000_000, ms.HeapAlloc>>20, p.ResidentBytes()>>20)
	for k := uint64(1); k <= 2; k++ {
		const transfers = 500
		for i := uint64(0); i < transfers; i++ {
			from := chain.AddrFromUint(1000 + (i*2099)%uint64(users))
			to := chain.AddrFromUint(1000 + (i*2099+1)%uint64(users))
			n.Submit(&chain.Tx{
				Kind: chain.TxTransfer, From: from, To: to, Nonce: k,
				Amount: big.NewInt(3), GasLimit: 1, GasPrice: 1,
			})
		}
		stats, err := n.RunEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
		if stats.Committed == 0 {
			t.Fatalf("epoch %d committed nothing", k)
		}
	}
	if rb := p.ResidentBytes(); rb > 256<<20 {
		t.Fatalf("resident %d MB exceeds 256 MB budget", rb>>20)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	t.Logf("heap after %dM-account epochs: %d MB, root %s",
		users/1_000_000, ms.HeapAlloc>>20, n.StateRoot())
}
