package store

import (
	"errors"
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// provisionFT stands up the FT transfer environment — a deployed
// FungibleToken with every user funded — through the same
// deterministic genesis every time, which is the recovery contract:
// a restarted process re-provisions genesis, then the store replays
// the committed history on top.
func provisionFT(t *testing.T) *workload.Env {
	t.Helper()
	env, err := workload.Provision(workload.FTTransfer(), true,
		shard.WithShards(4), shard.WithConsensusModel(false))
	if err != nil {
		t.Fatalf("provision: %v", err)
	}
	return env
}

// epochBatch builds epoch k's deterministic transaction mix: half the
// senders move FT balances (contract state), half move native funds
// (account state). Fresh Tx values every call, so the same logical
// batch can be submitted to two networks.
func epochBatch(contract chain.Address, users []chain.Address, k uint64) []*chain.Tx {
	const senders = 40
	txs := make([]*chain.Tx, 0, senders)
	for i := 0; i < senders; i++ {
		from := users[i]
		to := users[(i+int(k))%senders]
		if to == from {
			to = users[(i+int(k)+1)%senders]
		}
		if i%2 == 0 {
			txs = append(txs, &chain.Tx{
				Kind: chain.TxCall, From: from, To: contract, Nonce: k,
				Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
				Transition: "Transfer",
				Args: map[string]value.Value{
					"to": to.Value(), "amount": value.Uint128(1),
				},
			})
		} else {
			txs = append(txs, &chain.Tx{
				Kind: chain.TxTransfer, From: from, To: to, Nonce: k,
				Amount: big.NewInt(5), GasLimit: 1, GasPrice: 1,
			})
		}
	}
	return txs
}

// runEpochs drives nepochs deterministic batches, returning the state
// root and checkpoint after each one. first is the batch ordinal to
// start from (batches are numbered 1.. so nonces line up across
// resumed runs).
func runEpochs(t *testing.T, env *workload.Env, first, nepochs int) (roots []string, cps []shard.Checkpoint) {
	t.Helper()
	for k := first; k < first+nepochs; k++ {
		for _, tx := range epochBatch(env.Contract, env.Users, uint64(k)) {
			env.Net.Submit(tx)
		}
		stats, err := env.Net.RunEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
		if stats.Failed > 0 || stats.Committed == 0 {
			t.Fatalf("epoch %d: committed %d, failed %d", k, stats.Committed, stats.Failed)
		}
		roots = append(roots, env.Net.StateRoot())
		cps = append(cps, env.Net.Checkpoint())
	}
	return roots, cps
}

func openStore(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	st, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return st
}

// recoverFresh provisions the deterministic genesis again and recovers
// it from dir, returning the recovered environment with the store
// attached.
func recoverFresh(t *testing.T, dir string, opts ...Option) (*workload.Env, *Store) {
	t.Helper()
	env := provisionFT(t)
	st := openStore(t, dir, opts...)
	if err := st.Recover(env.Net); err != nil {
		t.Fatalf("recover: %v", err)
	}
	env.Net.AttachStateStore(st)
	return env, st
}

func TestRecoverFromJournal(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(0))
	a.Net.AttachStateStore(stA)
	roots, cps := runEpochs(t, a, 1, 5)
	// No Close: every committed epoch is already fsynced, exactly the
	// on-disk state a kill -9 leaves behind.

	b, stB := recoverFresh(t, dir, WithSnapshotEvery(0))
	defer stB.Close()
	if got := b.Net.Checkpoint(); got != cps[4] {
		t.Fatalf("recovered checkpoint %+v, want %+v", got, cps[4])
	}
	if got := b.Net.StateRoot(); got != roots[4] {
		t.Fatalf("recovered root %s, want %s", got, roots[4])
	}
	// The incremental trie rebuilt by recovery must agree with a full
	// recompute of the restored state.
	if inc, full := b.Net.StateRoot(), b.Net.RecomputeStateRoot(); inc != full {
		t.Fatalf("incremental root %s != recomputed %s", inc, full)
	}
}

func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(2))
	a.Net.AttachStateStore(stA)
	roots, cps := runEpochs(t, a, 1, 7)

	snaps := snapshotsIn(dir)
	if len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot after rotation, got %v", snaps)
	}
	last := cps[6].Epoch - cps[6].Epoch%2
	if snaps[0].epoch != last {
		t.Fatalf("latest snapshot at epoch %d, want %d", snaps[0].epoch, last)
	}
	// The journal holds only the epochs since that snapshot.
	info, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if wantEmpty := cps[6].Epoch == last; wantEmpty != (info.Size() == 0) {
		t.Fatalf("journal size %d after snapshot at %d (checkpoint %d)", info.Size(), last, cps[6].Epoch)
	}

	b, stB := recoverFresh(t, dir, WithSnapshotEvery(2))
	defer stB.Close()
	if got := b.Net.Checkpoint(); got != cps[6] {
		t.Fatalf("recovered checkpoint %+v, want %+v", got, cps[6])
	}
	if got := b.Net.StateRoot(); got != roots[6] {
		t.Fatalf("recovered root %s, want %s", got, roots[6])
	}
}

func TestTornJournalTailTruncated(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(0))
	a.Net.AttachStateStore(stA)
	roots, cps := runEpochs(t, a, 1, 5)

	// Tear the last record mid-frame: the crash happened while epoch 5's
	// append was in flight.
	path := filepath.Join(dir, journalName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	b, stB := recoverFresh(t, dir, WithSnapshotEvery(0))
	defer stB.Close()
	if got := b.Net.Checkpoint(); got != cps[3] {
		t.Fatalf("recovered checkpoint %+v, want pre-tear %+v", got, cps[3])
	}
	if got := b.Net.StateRoot(); got != roots[3] {
		t.Fatalf("recovered root %s, want %s", got, roots[3])
	}
	// Re-running the lost epoch's exact batch must land on the original
	// chain bit-for-bit: the restored NextTxID hands out the same ids.
	rr, rcps := runEpochs(t, b, 5, 1)
	if rr[0] != roots[4] || rcps[0] != cps[4] {
		t.Fatalf("re-run epoch: root %s cp %+v, want %s %+v", rr[0], rcps[0], roots[4], cps[4])
	}
}

func TestKillRestartResumesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(4))
	a.Net.AttachStateStore(stA)
	rootsA, cpsA := runEpochs(t, a, 1, 4)
	// Kill: abandon the store (no Close) and tear the in-flight frame so
	// recovery really exercises the mid-epoch crash path.
	path := filepath.Join(dir, journalName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatalf("test expects a non-empty journal tail after the last snapshot")
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	// The survivor continues without the directory (its store handle
	// died with the process being modelled).
	a.Net.AttachStateStore(nil)
	moreA, moreCpsA := runEpochs(t, a, 5, 3)

	b, stB := recoverFresh(t, dir, WithSnapshotEvery(4))
	defer stB.Close()
	// Recovery lands wherever the torn journal ends; resubmitting the
	// deterministic stream from there must replay onto the identical
	// chain. Checkpoint epoch cp means batches 1..cp-cpsA[0].Epoch+1
	// committed, so the next batch ordinal is cp-cpsA[0].Epoch+2.
	next := int(b.Net.Checkpoint().Epoch - cpsA[0].Epoch + 2)
	if next < 2 || next > 4 {
		t.Fatalf("recovered to unexpected epoch: %+v (first run started at %+v)", b.Net.Checkpoint(), cpsA[0])
	}
	rootsB, cpsB := runEpochs(t, b, next, 7-next+1)
	all := append(append([]string{}, rootsA...), moreA...)
	allCps := append(append([]shard.Checkpoint{}, cpsA...), moreCpsA...)
	tail := all[next-1:]
	tailCps := allCps[next-1:]
	for i := range rootsB {
		if rootsB[i] != tail[i] || cpsB[i] != tailCps[i] {
			t.Fatalf("resumed epoch %d diverged: root %s cp %+v, want %s %+v",
				next+i, rootsB[i], cpsB[i], tail[i], tailCps[i])
		}
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	env, st := recoverFresh(t, dir)
	defer st.Close()
	if ep := env.Net.Checkpoint().Epoch; ep > 2 {
		t.Fatalf("fresh recovery should stay at genesis provisioning epoch, got %d", ep)
	}
	// And the store must be usable from there.
	runEpochs(t, env, 1, 1)
}

func TestCorruptSnapshotFallsBackOrFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(2))
	a.Net.AttachStateStore(stA)
	runEpochs(t, a, 1, 6)

	snaps := snapshotsIn(dir)
	if len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v", snaps)
	}
	// Flip a byte mid-file: the frame CRC rejects the snapshot, and with
	// no older snapshot to fall back to recovery must refuse — never
	// silently restart from genesis with history compacted away.
	path := filepath.Join(dir, snaps[0].name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o666); err != nil {
		t.Fatal(err)
	}

	env := provisionFT(t)
	st := openStore(t, dir, WithSnapshotEvery(2))
	defer st.Close()
	err = st.Recover(env.Net)
	if err == nil {
		t.Fatal("recovery from corrupt snapshot with compacted journal must fail")
	}
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("want ErrCorruptSnapshot, got %v", err)
	}
}

// TestRestoreReadOnly recovers through the side-effect-free path and
// verifies the directory is untouched (replicas restoring from another
// role's directory must not truncate its journal).
func TestRestoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(0))
	a.Net.AttachStateStore(stA)
	roots, cps := runEpochs(t, a, 1, 4)
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalName)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	b := provisionFT(t)
	if err := Restore(dir, b.Net); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := b.Net.Checkpoint(); got != cps[3] {
		t.Fatalf("restored checkpoint %+v, want %+v", got, cps[3])
	}
	if got := b.Net.StateRoot(); got != roots[3] {
		t.Fatalf("restored root %s, want %s", got, roots[3])
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("read-only restore changed the journal: %d -> %d bytes", len(before), len(after))
	}
}
