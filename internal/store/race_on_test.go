//go:build race

package store

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
