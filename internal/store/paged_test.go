package store

import (
	"os"
	"path/filepath"
	"testing"

	"cosplit/internal/pager"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// tinyPaged forces the pager through constant eviction and faulting:
// a budget far below even this small network's working set, so every
// epoch exercises evict-then-fault round-trips on both account pages
// and contract states.
func tinyPaged() Option {
	return WithPagedState(8<<10, pager.WithPageCount(64))
}

func TestPagedModeBitIdenticalToSnapshotMode(t *testing.T) {
	snapDir, pagedDir := t.TempDir(), t.TempDir()

	a := provisionFT(t)
	stA := openStore(t, snapDir, WithSnapshotEvery(2))
	a.Net.AttachStateStore(stA)

	b := provisionFT(t)
	stB := openStore(t, pagedDir, WithSnapshotEvery(2), tinyPaged())
	if err := stB.Recover(b.Net); err != nil {
		t.Fatalf("paged recover (fresh dir): %v", err)
	}
	b.Net.AttachStateStore(stB)

	rootsA, cpsA := runEpochs(t, a, 1, 7)
	rootsB, cpsB := runEpochs(t, b, 1, 7)
	for i := range rootsA {
		if rootsA[i] != rootsB[i] || cpsA[i] != cpsB[i] {
			t.Fatalf("epoch %d diverged: snapshot-mode root %s cp %+v, paged root %s cp %+v",
				i+1, rootsA[i], cpsA[i], rootsB[i], cpsB[i])
		}
	}
	// Eviction must never corrupt the incremental trie: a full recompute
	// (which faults every page back in) agrees with it.
	if inc, full := b.Net.StateRoot(), b.Net.RecomputeStateRoot(); inc != full {
		t.Fatalf("paged incremental root %s != recomputed %s", inc, full)
	}
	// Paged mode writes no snapshot files — the page index replaces them.
	if snaps := snapshotsIn(pagedDir); len(snaps) != 0 {
		t.Fatalf("paged dir grew snapshot files: %v", snaps)
	}
	if !hasPagedState(pagedDir) {
		t.Fatal("paged dir has no committed page index after 7 epochs at cadence 2")
	}
}

// provisionFTMode provisions the same deterministic FT genesis as
// provisionFT with extra execution-mode options layered on top.
func provisionFTMode(t *testing.T, extra ...shard.Option) *workload.Env {
	t.Helper()
	opts := append([]shard.Option{shard.WithShards(4), shard.WithConsensusModel(false)}, extra...)
	env, err := workload.Provision(workload.FTTransfer(), true, opts...)
	if err != nil {
		t.Fatalf("provision: %v", err)
	}
	return env
}

// TestPagedCrossModeBitIdentical pins the acceptance criterion that all
// four execution modes stay bit-identical to an unpaged sequential run
// when state lives behind a starved page cache: parallel-shard and
// intra-shard workers fault and evict pages concurrently with
// execution, and none of it may leak into roots, checkpoints, or tx
// ids.
func TestPagedCrossModeBitIdentical(t *testing.T) {
	ref := provisionFT(t)
	refRoots, refCps := runEpochs(t, ref, 1, 5)

	modes := []struct {
		name string
		opts []shard.Option
	}{
		{"sequential", nil},
		{"parallel-shards", []shard.Option{shard.WithParallelism(true)}},
		{"intra-shard", []shard.Option{shard.WithIntraShardParallelism(4)}},
		{"both", []shard.Option{shard.WithParallelism(true), shard.WithIntraShardParallelism(4)}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			env := provisionFTMode(t, m.opts...)
			st := openStore(t, t.TempDir(), WithSnapshotEvery(2), tinyPaged())
			if err := st.Recover(env.Net); err != nil {
				t.Fatalf("paged recover (fresh dir): %v", err)
			}
			env.Net.AttachStateStore(st)
			defer st.Close()
			roots, cps := runEpochs(t, env, 1, 5)
			for i := range roots {
				if roots[i] != refRoots[i] || cps[i] != refCps[i] {
					t.Fatalf("epoch %d diverged from unpaged sequential: root %s cp %+v, want %s %+v",
						i+1, roots[i], cps[i], refRoots[i], refCps[i])
				}
			}
		})
	}
}

func TestPagedRecoverColdCache(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(2), tinyPaged())
	if err := stA.Recover(a.Net); err != nil {
		t.Fatalf("recover fresh: %v", err)
	}
	a.Net.AttachStateStore(stA)
	roots, cps := runEpochs(t, a, 1, 5)
	// Kill -9: no Close, no flush of the cache beyond what epochs forced.

	b, stB := recoverFresh(t, dir, WithSnapshotEvery(2), tinyPaged())
	defer stB.Close()
	if got := b.Net.Checkpoint(); got != cps[4] {
		t.Fatalf("recovered checkpoint %+v, want %+v", got, cps[4])
	}
	if got := b.Net.StateRoot(); got != roots[4] {
		t.Fatalf("recovered root %s, want %s", got, roots[4])
	}
	// Resuming the deterministic stream lands on the identical chain.
	// The reference is an independent storeless run of the same stream —
	// the killed process cannot serve as one, because its pager still
	// points into the directory the recovered process now owns.
	ref := provisionFT(t)
	refRoots, refCps := runEpochs(t, ref, 1, 7)
	moreB, moreCpsB := runEpochs(t, b, 6, 2)
	for i := range moreB {
		if moreB[i] != refRoots[5+i] || moreCpsB[i] != refCps[5+i] {
			t.Fatalf("resumed epoch %d diverged: %s %+v vs %s %+v",
				6+i, moreB[i], moreCpsB[i], refRoots[5+i], refCps[5+i])
		}
	}
}

func TestPagedTornJournalTailTruncated(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(4), tinyPaged())
	if err := stA.Recover(a.Net); err != nil {
		t.Fatalf("recover fresh: %v", err)
	}
	a.Net.AttachStateStore(stA)
	roots, cps := runEpochs(t, a, 1, 5)

	path := filepath.Join(dir, journalName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatalf("test expects a journal tail past the last flush")
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	b, stB := recoverFresh(t, dir, WithSnapshotEvery(4), tinyPaged())
	defer stB.Close()
	if got := b.Net.Checkpoint(); got != cps[3] {
		t.Fatalf("recovered checkpoint %+v, want pre-tear %+v", got, cps[3])
	}
	if got := b.Net.StateRoot(); got != roots[3] {
		t.Fatalf("recovered root %s, want %s", got, roots[3])
	}
	rr, rcps := runEpochs(t, b, 5, 1)
	if rr[0] != roots[4] || rcps[0] != cps[4] {
		t.Fatalf("re-run epoch: root %s cp %+v, want %s %+v", rr[0], rcps[0], roots[4], cps[4])
	}
}

func TestPagedRestoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	a := provisionFT(t)
	stA := openStore(t, dir, WithSnapshotEvery(2), tinyPaged())
	if err := stA.Recover(a.Net); err != nil {
		t.Fatalf("recover fresh: %v", err)
	}
	a.Net.AttachStateStore(stA)
	roots, cps := runEpochs(t, a, 1, 5)

	// A replica catches up read-only from the paged directory into its
	// own (resident) backend; the owner's files must not change.
	before := dirListing(t, dir)
	b := provisionFT(t)
	if err := Restore(dir, b.Net); err != nil {
		t.Fatalf("paged restore: %v", err)
	}
	if got := b.Net.Checkpoint(); got != cps[4] {
		t.Fatalf("restored checkpoint %+v, want %+v", got, cps[4])
	}
	if got := b.Net.StateRoot(); got != roots[4] {
		t.Fatalf("restored root %s, want %s", got, roots[4])
	}
	if after := dirListing(t, dir); after != before {
		t.Fatalf("read-only restore changed the directory:\nbefore %s\nafter  %s", before, after)
	}
}

// dirListing renders dir (recursively) as name:size lines, for
// asserting read-only behaviour.
func dirListing(t *testing.T, dir string) string {
	t.Helper()
	out := ""
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			out += path + ":" + info.ModTime().String() + "\n"
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}
