// Package store is the durability backend behind
// shard.WithStateStore: an append-only journal of committed epochs
// plus periodic full-state snapshots, from which a restarted network
// recovers to the exact committed state — same epoch, same next
// transaction id, bit-identical authenticated root.
//
// On disk a state directory holds:
//
//	journal.log        one wire frame (MsgCheckpointBlock) per
//	                   committed epoch: the sealed FinalBlock and the
//	                   post-commit checkpoint
//	snapshot-<E>.snap  full state as of epoch E: header (checkpoint +
//	                   root), every contract's fields, every account,
//	                   and a trailer with the record counts
//
// Both files reuse the internal/wire frame format, so every record is
// length-prefixed and CRC-checked: a torn tail (crash mid-append) or a
// flipped bit is detected at the frame layer, never misparsed into
// wrong state. Snapshots are written to a temp file, fsynced, and
// renamed into place; the journal is fsynced after every epoch before
// the pipeline is allowed to continue.
//
// Recovery (Store.Recover, or the read-only Restore) loads the newest
// complete snapshot, verifies the rebuilt authenticated root against
// the snapshot header, then replays the journal tail — FinalBlocks
// past the snapshot's epoch — through the network's ordinary replay
// path, which re-verifies each block's root. A torn journal tail is
// truncated at the last valid frame (Recover) or ignored (Restore).
package store

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cosplit/internal/chain"
	"cosplit/internal/obs"
	"cosplit/internal/pager"
	"cosplit/internal/shard"
	"cosplit/internal/wire"
)

// journalName is the append-only epoch journal inside a state dir.
const journalName = "journal.log"

// snapshotBatch is how many accounts ride in one MsgSnapshotAccounts
// frame; batching keeps frames small without a frame per account.
const snapshotBatch = 4096

// ErrCorruptSnapshot reports a snapshot file recovery cannot use:
// truncated, record counts off, or a state root that does not match
// its header after restore.
var ErrCorruptSnapshot = errors.New("store: corrupt snapshot")

// ErrJournalGap reports a journal whose next block skips past the
// recovered epoch — blocks are missing and replay cannot continue.
var ErrJournalGap = errors.New("store: journal gap")

// Store is a state directory opened for writing. It implements
// shard.StateStore: attach with shard.WithStateStore (or
// Network.AttachStateStore) and every committed epoch is journaled
// durably before the pipeline continues; every SnapshotEvery epochs
// the journal is compacted into a fresh full-state snapshot.
//
// A Store serves one network; EpochCommitted and Recover are
// serialised internally, so the node runtime's actor goroutine and a
// test harness can share one safely.
type Store struct {
	mu    sync.Mutex
	dir   string
	f     *os.File
	w     *bufio.Writer
	every uint64

	// Paged mode (WithPagedState): state lives in pages/ behind an LRU
	// cache instead of full snapshot files.
	paged       bool
	pagedBudget int64
	pagedOpts   []pager.Option
	pager       *pager.Pager

	reg            *obs.Registry
	journalRecords *obs.Counter
	snapshots      *obs.Counter
	replayed       *obs.Counter
	journalBytes   *obs.Gauge
}

// Option configures a Store at Open time.
type Option func(*Store)

// WithSnapshotEvery sets the snapshot cadence: a full-state snapshot
// (and journal compaction) after every n committed epochs, whenever
// the checkpoint epoch is a multiple of n. n = 0 disables snapshots —
// the journal grows forever and recovery replays it from genesis.
// The default is 8.
func WithSnapshotEvery(n int) Option {
	return func(s *Store) {
		if n < 0 {
			n = 0
		}
		s.every = uint64(n)
	}
}

// WithRegistry counts the store's metrics (journal records and bytes,
// snapshots written, blocks replayed in recovery) in reg instead of a
// private registry.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Store) { s.metrics(reg) }
}

func (s *Store) metrics(reg *obs.Registry) {
	s.reg = reg
	s.journalRecords = reg.Counter("store.journal_records")
	s.snapshots = reg.Counter("store.snapshots")
	s.replayed = reg.Counter("store.replayed_blocks")
	s.journalBytes = reg.Gauge("store.journal_bytes")
}

// Open opens (creating if needed) a state directory for writing. The
// journal is positioned for append; call Recover first on a directory
// that may hold previous state — opening alone reads nothing.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, f: f, every: 8}
	s.metrics(obs.NewRegistry())
	for _, o := range opts {
		o(s)
	}
	s.w = bufio.NewWriter(f)
	s.journalBytes.Set(end)
	if s.paged {
		if err := s.openPager(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// Close flushes and closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if serr := s.f.Sync(); err == nil {
		err = serr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// EpochCommitted implements shard.StateStore: append the committed
// block to the journal and fsync before returning, so a crash after
// this call replays the epoch and a crash during it truncates a torn
// frame. On a snapshot boundary the full state is dumped and the
// journal compacted.
func (s *Store) EpochCommitted(n *shard.Network, fb *shard.FinalBlock, cp shard.Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	payload, err := wire.EncodeCheckpointBlock(&wire.CheckpointBlock{Checkpoint: cp, Block: fb})
	if err != nil {
		return fmt.Errorf("store: encode epoch %d: %w", fb.Epoch, err)
	}
	frame := wire.EncodeFrame(wire.MsgCheckpointBlock, payload)
	if _, err := s.w.Write(frame); err != nil {
		return fmt.Errorf("store: journal epoch %d: %w", fb.Epoch, err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: journal epoch %d: %w", fb.Epoch, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: journal epoch %d: %w", fb.Epoch, err)
	}
	s.journalRecords.Inc()
	s.journalBytes.Add(int64(len(frame)))
	if s.every > 0 && cp.Epoch%s.every == 0 {
		if err := s.snapshot(n, cp); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot forces a full-state snapshot of n at its current checkpoint
// and compacts the journal. Replicas that caught up from another
// directory (Restore) call this so their own journal does not start
// with a gap: after a forced snapshot, recovery resumes from the
// snapshot instead of a journal whose last record predates the
// restored epoch.
func (s *Store) Snapshot(n *shard.Network) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	return s.snapshot(n, n.Checkpoint())
}

// snapshot dumps the network's full state as of cp into
// snapshot-<epoch>.snap, then compacts: the journal restarts empty and
// older snapshots are deleted. Called with s.mu held, between epochs
// (the pipeline is blocked in EpochCommitted), so canonical state is
// quiescent. In paged mode the page index takes the snapshot's place.
func (s *Store) snapshot(n *shard.Network, cp shard.Checkpoint) error {
	if s.pager != nil {
		return s.pagedCheckpoint(n, cp)
	}
	path := filepath.Join(s.dir, snapshotName(cp.Epoch))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("store: snapshot epoch %d: %w", cp.Epoch, err)
	}
	err = writeSnapshot(f, n, cp)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err == nil {
		err = syncDir(s.dir)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot epoch %d: %w", cp.Epoch, err)
	}
	s.snapshots.Inc()
	// The snapshot covers everything journaled so far: restart the
	// journal and drop superseded snapshots. A crash between the rename
	// and the truncation is benign — recovery skips journaled blocks at
	// or before the snapshot's epoch.
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	s.w.Reset(s.f)
	s.journalBytes.Set(0)
	for _, old := range snapshotsIn(s.dir) {
		if old.epoch < cp.Epoch {
			os.Remove(filepath.Join(s.dir, old.name))
		}
	}
	return nil
}

// writeSnapshot streams the snapshot records: header, contracts in
// address order, accounts in address order (batched), trailer.
func writeSnapshot(f *os.File, n *shard.Network, cp shard.Checkpoint) error {
	w := bufio.NewWriterSize(f, 1<<20)
	hdr := wire.EncodeSnapshotHeader(&wire.SnapshotHeader{Checkpoint: cp, Root: n.StateRoot()})
	if err := wire.WriteFrame(w, wire.MsgSnapshotHeader, hdr); err != nil {
		return err
	}
	contracts := n.Contracts.All()
	sort.Slice(contracts, func(i, j int) bool {
		return bytes.Compare(contracts[i].Addr[:], contracts[j].Addr[:]) < 0
	})
	for _, c := range contracts {
		payload, err := wire.EncodeSnapshotContract(&wire.SnapshotContract{
			Addr: c.Addr, Fields: c.Snapshot().Fields,
		})
		if err != nil {
			return err
		}
		if err := wire.WriteFrame(w, wire.MsgSnapshotContract, payload); err != nil {
			return err
		}
	}
	accs := make([]wire.SnapshotAccount, 0, n.Accounts.Len())
	n.Accounts.Range(func(addr chain.Address, acc *chain.Account) bool {
		accs = append(accs, wire.SnapshotAccount{
			Addr: addr, Balance: acc.Balance, Nonce: acc.Nonce, IsContract: acc.IsContract,
		})
		return true
	})
	sort.Slice(accs, func(i, j int) bool { return bytes.Compare(accs[i].Addr[:], accs[j].Addr[:]) < 0 })
	for i := 0; i < len(accs); i += snapshotBatch {
		end := i + snapshotBatch
		if end > len(accs) {
			end = len(accs)
		}
		if err := wire.WriteFrame(w, wire.MsgSnapshotAccounts, wire.EncodeSnapshotAccounts(accs[i:end])); err != nil {
			return err
		}
	}
	trailer := wire.EncodeSnapshotEnd(&wire.SnapshotEnd{
		Contracts: uint64(len(contracts)), Accounts: uint64(len(accs)),
	})
	if err := wire.WriteFrame(w, wire.MsgSnapshotEnd, trailer); err != nil {
		return err
	}
	return w.Flush()
}

// Recover restores n from the state directory: newest complete
// snapshot first (root-verified), then the journal tail, truncating a
// torn final frame. The network must be freshly provisioned through
// the same deterministic genesis as the original run. On an empty
// directory it is a no-op and the network stays at genesis.
func (s *Store) Recover(n *shard.Network) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	if s.pager != nil {
		return s.recoverPaged(n)
	}
	if err := restoreSnapshot(s.dir, n); err != nil {
		return err
	}
	return s.replayTail(n)
}

// Restore recovers a network from a state directory without touching
// it: no truncation, no journal handle kept. Replicas use it to catch
// up from another role's directory (e.g. a shard node re-syncing from
// the DS committee's state) before resuming live replay.
func Restore(dir string, n *shard.Network) error {
	if hasPagedState(dir) {
		return restorePaged(dir, n)
	}
	if err := restoreSnapshot(dir, n); err != nil {
		return err
	}
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	_, _, err = replayJournal(f, n, nil)
	return err
}

// replayJournal replays every journaled block past the network's
// epoch, returning how many applied and the byte offset after the last
// valid frame. A malformed frame ends the replay (torn tail); blocks
// at earlier epochs are skipped (already in the snapshot), and a block
// past the next expected epoch is a hard ErrJournalGap.
func replayJournal(f io.Reader, n *shard.Network, replayed *obs.Counter) (int, int64, error) {
	r := bufio.NewReaderSize(f, 1<<20)
	var good int64
	count := 0
	for {
		typ, payload, err := wire.ReadFrame(r)
		if err == io.EOF {
			return count, good, nil
		}
		if err != nil {
			if errors.Is(err, wire.ErrDecode) {
				// Torn or corrupt tail: recovery resumes from the last
				// fully-journaled epoch.
				return count, good, nil
			}
			return count, good, fmt.Errorf("store: journal: %w", err)
		}
		if typ != wire.MsgCheckpointBlock {
			return count, good, nil
		}
		cb, err := wire.DecodeCheckpointBlock(payload)
		if err != nil {
			return count, good, nil
		}
		good += int64(wire.HeaderLen + len(payload))
		switch {
		case cb.Block.Epoch < n.Epoch:
			// Covered by the snapshot (the journal outlived a compaction
			// that crashed before truncating).
		case cb.Block.Epoch > n.Epoch:
			return count, good, fmt.Errorf("%w: journaled epoch %d, expected %d",
				ErrJournalGap, cb.Block.Epoch, n.Epoch)
		default:
			if err := n.ReplayFinalBlock(cb.Block); err != nil {
				return count, good, fmt.Errorf("store: replay epoch %d: %w", cb.Block.Epoch, err)
			}
			// The checkpoint restores what replay cannot re-derive (the
			// exact next transaction id).
			n.RestoreCheckpoint(cb.Checkpoint)
			count++
			if replayed != nil {
				replayed.Inc()
			}
		}
	}
}

// restoreSnapshot loads the newest readable snapshot in dir into n and
// verifies the rebuilt root against the snapshot header. Unreadable
// (truncated) snapshots fall back to the next older one; no snapshot
// at all leaves n untouched.
func restoreSnapshot(dir string, n *shard.Network) error {
	snaps := snapshotsIn(dir)
	tried := 0
	for i := len(snaps) - 1; i >= 0; i-- {
		tried++
		hdr, contracts, accs, err := readSnapshot(filepath.Join(dir, snaps[i].name))
		if err != nil {
			if errors.Is(err, ErrCorruptSnapshot) || errors.Is(err, wire.ErrDecode) {
				continue
			}
			return err
		}
		for _, c := range contracts {
			if err := n.RestoreContractState(c.Addr, c.Fields); err != nil {
				return fmt.Errorf("store: snapshot %s: %w", snaps[i].name, err)
			}
		}
		for _, a := range accs {
			n.Accounts.Put(a.Addr, a.Balance, a.Nonce, a.IsContract)
		}
		n.RestoreCheckpoint(hdr.Checkpoint)
		n.RebuildStateRoots()
		if root := n.StateRoot(); root != hdr.Root {
			return fmt.Errorf("%w: %s: restored root %s, header says %s",
				ErrCorruptSnapshot, snaps[i].name, root, hdr.Root)
		}
		return nil
	}
	if tried > 0 {
		// Snapshot files exist but none is readable: refusing beats
		// silently restarting from genesis with the journal compacted
		// (the epochs the snapshots covered would vanish without a
		// trace).
		return fmt.Errorf("%w: none of %d snapshot files readable", ErrCorruptSnapshot, tried)
	}
	return nil
}

// readSnapshot parses one snapshot file completely before any of it is
// applied, so a truncated file can be rejected without half-restoring.
func readSnapshot(path string) (*wire.SnapshotHeader, []*wire.SnapshotContract, []wire.SnapshotAccount, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	typ, payload, err := wire.ReadFrame(r)
	if err != nil || typ != wire.MsgSnapshotHeader {
		return nil, nil, nil, fmt.Errorf("%w: %s: missing header", ErrCorruptSnapshot, path)
	}
	hdr, err := wire.DecodeSnapshotHeader(payload)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: %s: %v", ErrCorruptSnapshot, path, err)
	}
	var contracts []*wire.SnapshotContract
	var accs []wire.SnapshotAccount
	for {
		typ, payload, err := wire.ReadFrame(r)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%w: %s: no end record", ErrCorruptSnapshot, path)
		}
		switch typ {
		case wire.MsgSnapshotContract:
			c, err := wire.DecodeSnapshotContract(payload)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%w: %s: %v", ErrCorruptSnapshot, path, err)
			}
			contracts = append(contracts, c)
		case wire.MsgSnapshotAccounts:
			batch, err := wire.DecodeSnapshotAccounts(payload)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%w: %s: %v", ErrCorruptSnapshot, path, err)
			}
			accs = append(accs, batch...)
		case wire.MsgSnapshotEnd:
			e, err := wire.DecodeSnapshotEnd(payload)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%w: %s: %v", ErrCorruptSnapshot, path, err)
			}
			if e.Contracts != uint64(len(contracts)) || e.Accounts != uint64(len(accs)) {
				return nil, nil, nil, fmt.Errorf("%w: %s: trailer counts %d/%d, read %d/%d",
					ErrCorruptSnapshot, path, e.Contracts, e.Accounts, len(contracts), len(accs))
			}
			return hdr, contracts, accs, nil
		default:
			return nil, nil, nil, fmt.Errorf("%w: %s: unexpected %v record", ErrCorruptSnapshot, path, typ)
		}
	}
}

// snapshotRef is one snapshot file found in a state directory.
type snapshotRef struct {
	name  string
	epoch uint64
}

// snapshotsIn lists dir's snapshot files in ascending epoch order.
func snapshotsIn(dir string) []snapshotRef {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var snaps []snapshotRef
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		epoch, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".snap"), 10, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, snapshotRef{name: name, epoch: epoch})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].epoch < snaps[j].epoch })
	return snaps
}

func snapshotName(epoch uint64) string {
	return fmt.Sprintf("snapshot-%d.snap", epoch)
}

// syncDir fsyncs a directory so a just-renamed snapshot survives a
// power cut.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
