package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cosplit/internal/shard"
)

// journalBlocks appends n synthetic FinalBlocks (epochs 0..n-1) to a
// fresh store with snapshots disabled, so the journal holds every one.
func journalBlocks(t *testing.T, dir string, n int) *Store {
	t.Helper()
	st := openStore(t, dir, WithSnapshotEvery(0))
	for e := 0; e < n; e++ {
		fb := &shard.FinalBlock{Epoch: uint64(e), StateRoot: fmt.Sprintf("root-%d", e)}
		cp := shard.Checkpoint{Epoch: uint64(e + 1), BlockNumber: uint64(e + 1)}
		if err := st.EpochCommitted(nil, fb, cp); err != nil {
			t.Fatalf("journal epoch %d: %v", e, err)
		}
	}
	return st
}

// TestBlocksServesJournaledRange reads FinalBlock ranges back out of
// the journal — the DS committee's fallback source for replica
// catch-up requests older than its in-memory ring.
func TestBlocksServesJournaledRange(t *testing.T) {
	st := journalBlocks(t, t.TempDir(), 6)
	defer st.Close()

	blocks, err := st.Blocks(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("Blocks(2, 5) returned %d blocks, want 3", len(blocks))
	}
	for i, fb := range blocks {
		if want := uint64(2 + i); fb.Epoch != want || fb.StateRoot != fmt.Sprintf("root-%d", want) {
			t.Errorf("blocks[%d] = epoch %d root %s, want epoch %d", i, fb.Epoch, fb.StateRoot, want)
		}
	}
	if blocks, err = st.Blocks(0, 100); err != nil || len(blocks) != 6 {
		t.Fatalf("Blocks(0, 100) = %d blocks, %v; want all 6", len(blocks), err)
	}
	if blocks, err = st.Blocks(4, 4); err != nil || len(blocks) != 0 {
		t.Fatalf("Blocks(4, 4) = %d blocks, %v; want empty", len(blocks), err)
	}
	if blocks, err = st.Blocks(50, 60); err != nil || len(blocks) != 0 {
		t.Fatalf("Blocks(50, 60) = %d blocks, %v; want empty", len(blocks), err)
	}
}

// TestBlocksTornTail cuts the journal mid-frame: Blocks must serve
// everything before the tear and stop, exactly like recovery.
func TestBlocksTornTail(t *testing.T) {
	dir := t.TempDir()
	st := journalBlocks(t, dir, 4)
	defer st.Close()

	path := filepath.Join(dir, "journal.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	blocks, err := st.Blocks(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("Blocks over torn journal = %d blocks, want the 4 intact ones", len(blocks))
	}
}

// TestBlocksCompactionHorizon runs a real network with a snapshot
// cadence: each snapshot compacts the journal, so Blocks can only
// serve epochs after the latest snapshot — the unservable-gap case a
// far-behind replica hits.
func TestBlocksCompactionHorizon(t *testing.T) {
	dir := t.TempDir()
	env := provisionFT(t)
	st := openStore(t, dir, WithSnapshotEvery(2))
	env.Net.AttachStateStore(st)
	defer st.Close()

	// Run enough epochs that the last committed checkpoint is odd — one
	// past a snapshot — so exactly one FinalBlock outlives the final
	// compaction (block epoch = checkpoint epoch - 1).
	base := env.Net.Checkpoint().Epoch
	nepochs := 5
	if (base+uint64(nepochs))%2 == 0 {
		nepochs++
	}
	roots, _ := runEpochs(t, env, 1, nepochs)
	lastSnap := base + uint64(nepochs) - 1 // the last even checkpoint

	blocks, err := st.Blocks(0, base+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("journal holds %d blocks after compaction at checkpoint %d, want 1", len(blocks), lastSnap)
	}
	if blocks[0].Epoch != lastSnap {
		t.Errorf("surviving block epoch %d, want %d", blocks[0].Epoch, lastSnap)
	}
	if blocks[0].StateRoot != roots[nepochs-1] {
		t.Errorf("surviving block root %s, want %s", blocks[0].StateRoot, roots[nepochs-1])
	}
	// The compacted-away prefix is gone: a request for it comes back
	// empty rather than partial-from-zero.
	old, err := st.Blocks(0, lastSnap)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 0 {
		t.Errorf("Blocks over compacted epochs returned %d blocks, want none", len(old))
	}
}
