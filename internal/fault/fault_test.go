package fault

import (
	"errors"
	"math"
	"testing"
)

// TestEmptyPlanInjectsNothing: nil plans, New(), and zero-spec
// generated plans all return None everywhere.
func TestEmptyPlanInjectsNothing(t *testing.T) {
	var nilPlan *Plan
	for _, p := range []*Plan{nilPlan, New(), Generate(42, Spec{})} {
		if !p.Empty() {
			t.Errorf("plan %v not Empty", p)
		}
		for epoch := uint64(1); epoch <= 64; epoch++ {
			for shard := 0; shard < 16; shard++ {
				if d := p.At(epoch, shard); d.Kind != None {
					t.Fatalf("empty plan injected %v at (%d, %d)", d.Kind, epoch, shard)
				}
			}
		}
	}
}

// TestGeneratedPlanDeterministic: the same seed and spec yield the
// same directive at every coordinate, independently of query order.
func TestGeneratedPlanDeterministic(t *testing.T) {
	spec := Spec{CrashProb: 0.1, DropProb: 0.1, CorruptProb: 0.05, StraggleProb: 0.2, StraggleFactor: 4}
	a := Generate(7, spec)
	b := Generate(7, spec)
	// Query b backwards to prove verdicts do not depend on draw order.
	for epoch := uint64(100); epoch >= 1; epoch-- {
		for shard := 15; shard >= 0; shard-- {
			if got, want := b.At(epoch, shard), a.At(epoch, shard); got != want {
				t.Fatalf("(%d, %d): %+v vs %+v", epoch, shard, got, want)
			}
		}
	}
	c := Generate(8, spec)
	same := 0
	total := 0
	for epoch := uint64(1); epoch <= 100; epoch++ {
		for shard := 0; shard < 16; shard++ {
			total++
			if c.At(epoch, shard) == a.At(epoch, shard) {
				same++
			}
		}
	}
	if same == total {
		t.Error("seeds 7 and 8 generated identical schedules")
	}
}

// TestGeneratedRatesRoughlyMatchSpec: over many draws the empirical
// fault mix approaches the configured probabilities.
func TestGeneratedRatesRoughlyMatchSpec(t *testing.T) {
	spec := Spec{CrashProb: 0.1, DropProb: 0.05, CorruptProb: 0.05, StraggleProb: 0.2}
	p := Generate(1234, spec)
	counts := map[Kind]int{}
	const epochs, shards = 2000, 8
	for epoch := uint64(1); epoch <= epochs; epoch++ {
		for shard := 0; shard < shards; shard++ {
			counts[p.At(epoch, shard).Kind]++
		}
	}
	total := float64(epochs * shards)
	check := func(k Kind, want float64) {
		got := float64(counts[k]) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v rate = %.3f, want ~%.2f", k, got, want)
		}
	}
	check(CrashMidEpoch, spec.CrashProb)
	check(DropMicroBlock, spec.DropProb)
	check(CorruptDelta, spec.CorruptProb)
	check(Straggle, spec.StraggleProb)
	if counts[Straggle] > 0 {
		// Straggle directives carry the default factor.
		for epoch := uint64(1); epoch <= epochs; epoch++ {
			if d := p.At(epoch, 0); d.Kind == Straggle {
				if d.Factor != 4 {
					t.Errorf("default straggle factor = %g, want 4", d.Factor)
				}
				break
			}
		}
	}
}

// TestOverridesWin: Set takes precedence over the generated schedule
// and works on the empty plan.
func TestOverridesWin(t *testing.T) {
	p := Generate(7, Spec{CrashProb: 1})
	p.Set(3, 1, Directive{Kind: Straggle, Factor: 2})
	if d := p.At(3, 1); d.Kind != Straggle || d.Factor != 2 {
		t.Errorf("override ignored: %+v", d)
	}
	if d := p.At(3, 0); d.Kind != CrashMidEpoch {
		t.Errorf("generated schedule lost under overrides: %+v", d)
	}
	q := New().Set(1, 0, Directive{Kind: DropMicroBlock})
	if q.Empty() {
		t.Error("plan with overrides reported Empty")
	}
	if d := q.At(1, 0); d.Kind != DropMicroBlock {
		t.Errorf("override on empty plan: %+v", d)
	}
	if d := q.At(2, 0); d.Kind != None {
		t.Errorf("non-overridden slot faulted: %+v", d)
	}
}

// TestParseSpec round-trips the shardsim flag syntax.
func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("42:crash=0.1,drop=0.05,corrupt=0.02,straggle=0.25x8")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed() != 42 {
		t.Errorf("seed = %d, want 42", p.Seed())
	}
	if p.spec.CrashProb != 0.1 || p.spec.DropProb != 0.05 ||
		p.spec.CorruptProb != 0.02 || p.spec.StraggleProb != 0.25 || p.spec.StraggleFactor != 8 {
		t.Errorf("spec = %+v", p.spec)
	}
	if p2, err := ParseSpec("7:"); err != nil || !p2.Empty() {
		t.Errorf("empty spec: plan %v err %v", p2, err)
	}
	for _, tc := range []struct {
		spec string
		want error
	}{
		{"", ErrBadSpec},                       // no seed separator
		{"x:crash=0.1", ErrBadSpec},            // non-numeric seed
		{"1:crash", ErrBadSpec},                // no probability
		{"1:crash=2", ErrProbRange},            // probability > 1
		{"1:crash=-0.1", ErrProbRange},         // probability < 0
		{"1:crash=abc", ErrProbRange},          // non-numeric probability
		{"1:flood=0.1", ErrUnknownKind},        // unmodeled kind
		{"1:straggle=0.1x0.5", ErrProbRange},   // factor < 1
		{"1:straggle=0.1xzz", ErrProbRange},    // non-numeric factor
		{"1:crash=0.6,drop=0.6", ErrProbRange}, // kinds sum past 1
	} {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", tc.spec)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("ParseSpec(%q) = %v, want %v", tc.spec, err, tc.want)
		}
	}
	// A spec whose kinds sum to exactly 1 is the boundary case and
	// stays legal.
	if _, err := ParseSpec("1:crash=0.5,drop=0.5"); err != nil {
		t.Errorf("ParseSpec at sum == 1: %v", err)
	}
}

// TestLostClassification: exactly the three block-loss kinds trigger
// recovery.
func TestLostClassification(t *testing.T) {
	for k, want := range map[Kind]bool{
		None: false, Straggle: false,
		CrashMidEpoch: true, DropMicroBlock: true, CorruptDelta: true,
	} {
		if k.Lost() != want {
			t.Errorf("%v.Lost() = %v, want %v", k, k.Lost(), want)
		}
	}
}
