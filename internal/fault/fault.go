// Package fault provides deterministic fault injection for the
// sharded epoch pipeline. A Plan maps (epoch, shard) to a Directive —
// crash the shard mid-epoch, slow it down by a straggle factor, drop
// its sealed MicroBlock in transit, or corrupt its StateDelta — and
// the pipeline consults the plan at fixed points so the same seed and
// spec reproduce the same fault schedule bit-for-bit across runs and
// across every execution mode (sequential, parallel shards,
// intra-shard parallel, both).
//
// Determinism is by construction: a generated plan derives each
// (epoch, shard) verdict from a splitmix64 hash of (seed, epoch,
// shard) compared against integer probability thresholds fixed at
// construction time. No mutable RNG stream exists, so the verdict for
// epoch 7, shard 2 does not depend on how many draws preceded it, how
// many shards the network has, or which goroutine asks first.
// Explicit per-(epoch, shard) overrides (Set) take precedence over the
// generated schedule; a plan with a zero spec and no overrides injects
// nothing and leaves the pipeline byte-identical to an unfaulted run.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Typed parse failures: callers (flag handling, config loaders) can
// errors.Is against these instead of matching message text.
var (
	// ErrBadSpec marks a syntactically malformed spec string.
	ErrBadSpec = errors.New("malformed fault spec")
	// ErrUnknownKind marks a fault kind the plan does not model.
	ErrUnknownKind = errors.New("unknown fault kind")
	// ErrProbRange marks a probability outside [0, 1], a straggle
	// factor below 1, or kind probabilities that sum past 1.
	ErrProbRange = errors.New("fault probability out of range")
)

// Kind enumerates the modeled fault directives.
type Kind uint8

const (
	// None leaves the shard healthy for the epoch.
	None Kind = iota
	// CrashMidEpoch crashes the shard during execution: no MicroBlock
	// is sealed, the shard's committee runs a PBFT view change, and the
	// whole batch is requeued.
	CrashMidEpoch
	// Straggle slows the shard's modeled execution time by Factor; the
	// MicroBlock still seals and merges normally.
	Straggle
	// DropMicroBlock loses the sealed MicroBlock in transit to the DS
	// committee; recovery is as for CrashMidEpoch.
	DropMicroBlock
	// CorruptDelta delivers a MicroBlock whose StateDelta fails the DS
	// committee's validation; the block is discarded and recovery is as
	// for CrashMidEpoch.
	CorruptDelta
)

// String returns the kind's trace-event label.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case CrashMidEpoch:
		return "crash"
	case Straggle:
		return "straggle"
	case DropMicroBlock:
		return "drop"
	case CorruptDelta:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Lost reports whether the directive loses the shard's MicroBlock
// (crash, drop, corrupt) and therefore triggers the recovery path:
// view change, batch requeue, unavailability backoff.
func (k Kind) Lost() bool {
	return k == CrashMidEpoch || k == DropMicroBlock || k == CorruptDelta
}

// Directive is the plan's verdict for one (epoch, shard).
type Directive struct {
	Kind Kind
	// Factor multiplies the shard's modeled execution time when Kind is
	// Straggle (values below 1 are treated as 1).
	Factor float64
}

// Spec parameterises a generated plan: independent per-(epoch, shard)
// probabilities for each fault kind. Probabilities are cumulative in
// the order crash, drop, corrupt, straggle; ParseSpec rejects sums
// past 1 (ErrProbRange), and Generate clamps them as a last resort
// for hand-built specs.
type Spec struct {
	CrashProb    float64
	DropProb     float64
	CorruptProb  float64
	StraggleProb float64
	// StraggleFactor is the execution-time multiplier for straggling
	// shards (default 4).
	StraggleFactor float64
}

// zero reports whether the spec generates no faults.
func (s Spec) zero() bool {
	return s.CrashProb <= 0 && s.DropProb <= 0 && s.CorruptProb <= 0 && s.StraggleProb <= 0
}

type planKey struct {
	epoch uint64
	shard int
}

// Plan is a deterministic fault schedule. The zero value (or New())
// is the empty plan: it injects nothing. Plans are immutable once
// handed to a network; At is safe for concurrent use as long as no
// Set races it.
type Plan struct {
	seed int64
	spec Spec
	// Integer thresholds precomputed from the spec so At never touches
	// floating point: a 63-bit draw below crashT crashes, below dropT
	// drops, and so on.
	crashT, dropT, corruptT, straggleT uint64
	overrides                          map[planKey]Directive
}

// New returns the empty plan (no generated faults, no overrides).
func New() *Plan { return &Plan{} }

// Generate returns a plan drawing each (epoch, shard) directive from
// spec's probabilities under the given seed.
func Generate(seed int64, spec Spec) *Plan {
	if spec.StraggleFactor < 1 {
		spec.StraggleFactor = 4
	}
	p := &Plan{seed: seed, spec: spec}
	// Cumulative thresholds over the 63-bit draw space.
	const space = float64(1 << 62 * 2) // 2^63 without overflowing untyped int64 math
	cum := 0.0
	next := func(prob float64) uint64 {
		if prob < 0 {
			prob = 0
		}
		cum += prob
		if cum > 1 {
			cum = 1
		}
		return uint64(cum * space)
	}
	p.crashT = next(spec.CrashProb)
	p.dropT = next(spec.DropProb)
	p.corruptT = next(spec.CorruptProb)
	p.straggleT = next(spec.StraggleProb)
	return p
}

// Set overrides the directive for one (epoch, shard), taking
// precedence over the generated schedule. It returns the plan for
// chaining and is intended for tests and hand-written scenarios.
func (p *Plan) Set(epoch uint64, shard int, d Directive) *Plan {
	if p.overrides == nil {
		p.overrides = make(map[planKey]Directive)
	}
	p.overrides[planKey{epoch, shard}] = d
	return p
}

// Empty reports whether the plan can never inject a fault.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.overrides) == 0 && p.spec.zero())
}

// Seed returns the generation seed (0 for hand-built plans).
func (p *Plan) Seed() int64 { return p.seed }

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche over
// 64 bits, the standard seed-expansion hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// At returns the directive for (epoch, shard). It is a pure function
// of the plan: overrides first, then the seeded hash draw.
func (p *Plan) At(epoch uint64, shard int) Directive {
	if p == nil {
		return Directive{}
	}
	if d, ok := p.overrides[planKey{epoch, shard}]; ok {
		return d
	}
	if p.spec.zero() {
		return Directive{}
	}
	u := splitmix64(splitmix64(uint64(p.seed)^epoch*0x9e3779b97f4a7c15) ^ uint64(shard)*0xc2b2ae3d27d4eb4f)
	u >>= 1 // 63-bit draw
	switch {
	case u < p.crashT:
		return Directive{Kind: CrashMidEpoch}
	case u < p.dropT:
		return Directive{Kind: DropMicroBlock}
	case u < p.corruptT:
		return Directive{Kind: CorruptDelta}
	case u < p.straggleT:
		return Directive{Kind: Straggle, Factor: p.spec.StraggleFactor}
	}
	return Directive{}
}

// ParseSpec parses the shardsim -faults argument: "seed:spec" where
// spec is a comma-separated list of kind=prob entries — crash, drop,
// corrupt (probabilities in [0,1]) and straggle, which accepts an
// optional xF factor suffix (straggle=0.2x4). Examples:
//
//	7:crash=0.1
//	42:crash=0.05,drop=0.05,corrupt=0.02,straggle=0.25x8
//
// An empty spec after the colon yields the empty plan under that seed.
// Failures wrap ErrBadSpec, ErrUnknownKind or ErrProbRange; kind
// probabilities summing past 1 are an ErrProbRange error here, not a
// silent clamp.
func ParseSpec(s string) (*Plan, error) {
	seedStr, specStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("%w: %q: want seed:kind=prob[,...]", ErrBadSpec, s)
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: seed %q: %v", ErrBadSpec, seedStr, err)
	}
	var spec Spec
	if strings.TrimSpace(specStr) == "" {
		return Generate(seed, spec), nil
	}
	for _, part := range strings.Split(specStr, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("%w: entry %q: want kind=prob", ErrBadSpec, part)
		}
		if key == "straggle" {
			if pv, fv, hasFactor := strings.Cut(val, "x"); hasFactor {
				f, err := strconv.ParseFloat(fv, 64)
				if err != nil || f < 1 {
					return nil, fmt.Errorf("%w: straggle factor %q: want a number >= 1", ErrProbRange, fv)
				}
				spec.StraggleFactor = f
				val = pv
			}
		}
		prob, err := strconv.ParseFloat(val, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("%w: %q for %s: want a number in [0,1]", ErrProbRange, val, key)
		}
		switch key {
		case "crash":
			spec.CrashProb = prob
		case "drop":
			spec.DropProb = prob
		case "corrupt":
			spec.CorruptProb = prob
		case "straggle":
			spec.StraggleProb = prob
		default:
			return nil, fmt.Errorf("%w: %q (want crash, drop, corrupt or straggle)", ErrUnknownKind, key)
		}
	}
	if sum := spec.CrashProb + spec.DropProb + spec.CorruptProb + spec.StraggleProb; sum > 1 {
		return nil, fmt.Errorf("%w: kind probabilities sum to %g, want <= 1", ErrProbRange, sum)
	}
	return Generate(seed, spec), nil
}

// String renders the plan's generation parameters (for logs).
func (p *Plan) String() string {
	if p.Empty() {
		return "fault.Plan{empty}"
	}
	return fmt.Sprintf("fault.Plan{seed=%d crash=%g drop=%g corrupt=%g straggle=%gx%g overrides=%d}",
		p.seed, p.spec.CrashProb, p.spec.DropProb, p.spec.CorruptProb,
		p.spec.StraggleProb, p.spec.StraggleFactor, len(p.overrides))
}
