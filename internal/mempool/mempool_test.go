package mempool

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/dispatch"
	"cosplit/internal/obs"
)

// nonces is a test NonceSource: a plain map of committed nonces.
type nonces map[chain.Address]uint64

func (n nonces) NonceOf(a chain.Address) (uint64, bool) {
	v, ok := n[a]
	return v, ok
}

var nextID atomic.Uint64

func tx(from uint64, nonce, price uint64) *chain.Tx {
	return &chain.Tx{
		ID:       nextID.Add(1),
		Kind:     chain.TxTransfer,
		From:     chain.AddrFromUint(from),
		To:       chain.AddrFromUint(from + 1000),
		Nonce:    nonce,
		Amount:   big.NewInt(1),
		GasLimit: 1,
		GasPrice: price,
	}
}

func newPool(t *testing.T, cfg Config, src nonces, opts ...Option) *Pool {
	t.Helper()
	if src == nil {
		src = nonces{}
	}
	return New(cfg, src, opts...)
}

func mustAdd(t *testing.T, p *Pool, txs ...*chain.Tx) {
	t.Helper()
	for _, tx := range txs {
		if err := p.Add(tx); err != nil {
			t.Fatalf("Add(%s nonce %d): %v", tx.From, tx.Nonce, err)
		}
	}
}

// keyOf identifies a transaction independently of its pool-assigned id.
func keyOf(tx *chain.Tx) string {
	return fmt.Sprintf("%s/%d/%d", tx.From, tx.Nonce, tx.GasPrice)
}

func TestDrainPriorityAndNonceOrder(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 0, chain.AddrFromUint(2): 0}
	p := newPool(t, Config{}, src)
	// Sender 1's chain starts cheap then gets expensive; sender 2 pays a
	// middling price. Nonce order within sender 1 must hold even though
	// its nonce 2 outbids everything.
	a1, a2, a3 := tx(1, 1, 2), tx(1, 2, 50), tx(2, 1, 10)
	mustAdd(t, p, a1, a2, a3)
	batch := p.DrainEpoch(1)
	want := []string{keyOf(a3), keyOf(a1), keyOf(a2)}
	if len(batch) != len(want) {
		t.Fatalf("batch length %d, want %d", len(batch), len(want))
	}
	// Sender 2 (price 10) leads; then sender 1's nonce 1 (price 2)
	// unlocks its nonce 2 (price 50), which now outbids nothing left.
	got := []string{keyOf(batch[0]), keyOf(batch[1]), keyOf(batch[2])}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch order %v, want %v", got, want)
		}
	}
	if p.Len() != 0 {
		t.Errorf("pool not drained: %d left", p.Len())
	}
}

func TestNonceGapParksUntilFilled(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 0}
	p := newPool(t, Config{MaxNonceGap: 8}, src)
	later := tx(1, 3, 5)
	mustAdd(t, p, later)
	if batch := p.DrainEpoch(1); len(batch) != 0 {
		t.Fatalf("parked transaction drained: %v", batch)
	}
	// Filling nonces 1 and 2 releases the whole chain.
	mustAdd(t, p, tx(1, 1, 5), tx(1, 2, 5))
	batch := p.DrainEpoch(2)
	if len(batch) != 3 {
		t.Fatalf("drained %d, want 3", len(batch))
	}
	for i, want := range []uint64{1, 2, 3} {
		if batch[i].Nonce != want {
			t.Errorf("batch[%d].Nonce = %d, want %d", i, batch[i].Nonce, want)
		}
	}
}

func TestNonceGapTooLargeRejected(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 0}
	p := newPool(t, Config{MaxNonceGap: 4}, src)
	err := p.Add(tx(1, 6, 5)) // next expected 1, gap 5 > 4
	if !errors.Is(err, ErrNonceGap) {
		t.Fatalf("err = %v, want ErrNonceGap", err)
	}
	mustAdd(t, p, tx(1, 5, 5)) // gap 4 parks fine
}

func TestStaleAndReplayRejections(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 3}
	p := newPool(t, Config{}, src)
	if err := p.Add(tx(1, 3, 5)); !errors.Is(err, dispatch.ErrStaleNonce) {
		t.Fatalf("committed nonce err = %v, want ErrStaleNonce", err)
	}
	if err := p.Add(tx(1, 1, 99)); !errors.Is(err, dispatch.ErrStaleNonce) {
		t.Fatalf("old nonce err = %v, want ErrStaleNonce", err)
	}
	if err := p.Add(tx(9999, 1, 5)); !errors.Is(err, dispatch.ErrUnknownSender) {
		t.Fatalf("unknown sender err = %v, want ErrUnknownSender", err)
	}
	// A nonce drained this epoch (in flight) is a replay until the
	// chain commits it or Requeue rewinds it.
	mustAdd(t, p, tx(1, 4, 5))
	if got := p.DrainEpoch(1); len(got) != 1 {
		t.Fatalf("drained %d, want 1", len(got))
	}
	if err := p.Add(tx(1, 4, 7)); !errors.Is(err, dispatch.ErrNonceReplay) {
		t.Fatalf("in-flight nonce err = %v, want ErrNonceReplay", err)
	}
}

func TestReplacementByFee(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 0}
	p := newPool(t, Config{}, src)
	cheap := tx(1, 1, 5)
	mustAdd(t, p, cheap)
	// Equal price does not replace, and the error names both causes.
	err := p.Add(tx(1, 1, 5))
	if !errors.Is(err, ErrUnderpriced) || !errors.Is(err, dispatch.ErrNonceReplay) {
		t.Fatalf("equal-price replacement err = %v, want ErrUnderpriced and ErrNonceReplay", err)
	}
	rich := tx(1, 1, 9)
	mustAdd(t, p, rich)
	if p.Len() != 1 {
		t.Fatalf("pool holds %d, want 1 after replacement", p.Len())
	}
	batch := p.DrainEpoch(1)
	if len(batch) != 1 || batch[0].GasPrice != 9 {
		t.Fatalf("drained %v, want the replacement at price 9", batch)
	}
}

func TestPriceFloor(t *testing.T) {
	p := newPool(t, Config{MinGasPrice: 10}, nonces{chain.AddrFromUint(1): 0})
	if err := p.Add(tx(1, 1, 9)); !errors.Is(err, ErrUnderpriced) {
		t.Fatalf("below-floor err = %v, want ErrUnderpriced", err)
	}
	mustAdd(t, p, tx(1, 1, 10))
}

func TestPerSenderCap(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 0}
	p := newPool(t, Config{PerSender: 3, MaxNonceGap: 16}, src)
	mustAdd(t, p, tx(1, 1, 5), tx(1, 2, 5), tx(1, 3, 5))
	if err := p.Add(tx(1, 4, 5)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("over-cap err = %v, want ErrPoolFull", err)
	}
}

func TestCapacityEvictionPrefersCheapestTail(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 0, chain.AddrFromUint(2): 0, chain.AddrFromUint(3): 0}
	reg := obs.NewRegistry()
	p := newPool(t, Config{Capacity: 3}, src, WithRegistry(reg))
	cheapTail := tx(2, 1, 2)
	mustAdd(t, p, tx(1, 1, 8), cheapTail, tx(3, 1, 6))
	// A newcomer that does not outbid the floor (price 2) bounces.
	if err := p.Add(tx(3, 2, 2)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("non-outbidding err = %v, want ErrPoolFull", err)
	}
	// One that does evicts sender 2's tail.
	mustAdd(t, p, tx(3, 2, 7))
	if p.Len() != 3 {
		t.Fatalf("pool holds %d, want 3", p.Len())
	}
	batch := p.DrainEpoch(1)
	for _, b := range batch {
		if keyOf(b) == keyOf(cheapTail) {
			t.Fatalf("cheapest tail survived eviction: %v", keyOf(b))
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["mempool.evict.capacity"] != 1 {
		t.Errorf("evict.capacity = %d, want 1", snap.Counters["mempool.evict.capacity"])
	}
	if snap.Counters["mempool.reject.full"] != 1 {
		t.Errorf("reject.full = %d, want 1", snap.Counters["mempool.reject.full"])
	}
}

func TestAgeEviction(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 0}
	reg := obs.NewRegistry()
	p := newPool(t, Config{MaxAgeEpochs: 2, MaxNonceGap: 8}, src, WithRegistry(reg))
	// Parked behind a gap that never fills; admitted at epoch 1.
	mustAdd(t, p, tx(1, 3, 5))
	if b := p.DrainEpoch(2); len(b) != 0 {
		t.Fatalf("drained %v", b)
	}
	if b := p.DrainEpoch(3); len(b) != 0 { // epoch 3 >= 1+2: evicted
		t.Fatalf("drained %v", b)
	}
	if p.Len() != 0 {
		t.Errorf("pool holds %d, want 0 after age eviction", p.Len())
	}
	if got := reg.Snapshot().Counters["mempool.evict.age"]; got != 1 {
		t.Errorf("evict.age = %d, want 1", got)
	}
}

func TestRequeueRewindsProgress(t *testing.T) {
	src := nonces{chain.AddrFromUint(1): 0}
	p := newPool(t, Config{}, src)
	a, b := tx(1, 1, 5), tx(1, 2, 5)
	mustAdd(t, p, a, b)
	batch := p.DrainEpoch(1)
	if len(batch) != 2 {
		t.Fatalf("drained %d, want 2", len(batch))
	}
	// The pipeline deferred both; they must drain again next epoch.
	p.Requeue(batch)
	again := p.DrainEpoch(2)
	if len(again) != 2 || again[0].Nonce != 1 || again[1].Nonce != 2 {
		t.Fatalf("requeued drain = %v, want nonces 1,2", again)
	}
}

func TestMaxBatchCutsLowestPriority(t *testing.T) {
	src := nonces{}
	for u := uint64(1); u <= 4; u++ {
		src[chain.AddrFromUint(u)] = 0
	}
	p := newPool(t, Config{MaxBatch: 2}, src)
	mustAdd(t, p, tx(1, 1, 1), tx(2, 1, 9), tx(3, 1, 5), tx(4, 1, 7))
	batch := p.DrainEpoch(1)
	if len(batch) != 2 || batch[0].GasPrice != 9 || batch[1].GasPrice != 7 {
		t.Fatalf("batch = %v, want the two best-paying", batch)
	}
	if p.Len() != 2 {
		t.Errorf("pool holds %d, want 2 held back", p.Len())
	}
	rest := p.DrainEpoch(2)
	if len(rest) != 2 || rest[0].GasPrice != 5 || rest[1].GasPrice != 1 {
		t.Fatalf("second batch = %v, want prices 5,1", rest)
	}
}

// TestDrainDeterminismUnderPermutation is the pool-level half of the
// acceptance criterion: the same transaction multiset, submitted in
// permuted orders across 3 seeds, yields identical per-epoch batches.
func TestDrainDeterminismUnderPermutation(t *testing.T) {
	build := func(seed int64) [][]string {
		src := nonces{}
		var txs []*chain.Tx
		for u := uint64(1); u <= 10; u++ {
			src[chain.AddrFromUint(u)] = 0
			for n := uint64(1); n <= 6; n++ {
				txs = append(txs, tx(u, n, (u*7+n*13)%23+1))
			}
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(txs), func(i, j int) { txs[i], txs[j] = txs[j], txs[i] })
		p := newPool(t, Config{MaxBatch: 17, MaxNonceGap: 16}, src)
		for _, x := range txs {
			if err := p.Add(x); err != nil {
				t.Fatalf("seed %d: Add: %v", seed, err)
			}
		}
		var epochs [][]string
		for ep := uint64(1); p.Len() > 0; ep++ {
			batch := p.DrainEpoch(ep)
			keys := make([]string, len(batch))
			for i, b := range batch {
				keys[i] = keyOf(b)
			}
			epochs = append(epochs, keys)
			// Commit the batch: the chain's nonces advance to each
			// sender's highest drained nonce.
			for _, b := range batch {
				if b.Nonce > src[b.From] {
					src[b.From] = b.Nonce
				}
			}
		}
		return epochs
	}
	want := build(1)
	for seed := int64(2); seed <= 3; seed++ {
		got := build(seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d epochs, want %d", seed, len(got), len(want))
		}
		for e := range want {
			if len(got[e]) != len(want[e]) {
				t.Fatalf("seed %d epoch %d: batch size %d, want %d", seed, e, len(got[e]), len(want[e]))
			}
			for i := range want[e] {
				if got[e][i] != want[e][i] {
					t.Fatalf("seed %d epoch %d pos %d: %s, want %s", seed, e, i, got[e][i], want[e][i])
				}
			}
		}
	}
}

// TestConcurrentSubmitters drives the striped pool from many
// goroutines; run under -race this checks the locking discipline, and
// the final drain must see every admitted transaction exactly once.
func TestConcurrentSubmitters(t *testing.T) {
	const senders, perSender = 32, 16
	src := nonces{}
	for u := uint64(1); u <= senders; u++ {
		src[chain.AddrFromUint(u)] = 0
	}
	p := newPool(t, Config{Capacity: senders * perSender, PerSender: perSender, MaxNonceGap: perSender}, src)
	var wg sync.WaitGroup
	for u := uint64(1); u <= senders; u++ {
		wg.Add(1)
		go func(u uint64) {
			defer wg.Done()
			for n := uint64(1); n <= perSender; n++ {
				if err := p.Add(tx(u, n, n)); err != nil {
					t.Errorf("sender %d nonce %d: %v", u, n, err)
				}
			}
		}(u)
	}
	wg.Wait()
	if p.Len() != senders*perSender {
		t.Fatalf("pool holds %d, want %d", p.Len(), senders*perSender)
	}
	batch := p.DrainEpoch(1)
	if len(batch) != senders*perSender {
		t.Fatalf("drained %d, want %d", len(batch), senders*perSender)
	}
	seen := map[string]bool{}
	for _, b := range batch {
		k := keyOf(b)
		if seen[k] {
			t.Fatalf("duplicate %s in batch", k)
		}
		seen[k] = true
	}
}
