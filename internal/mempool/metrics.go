package mempool

import "cosplit/internal/obs"

// poolMetrics caches the pool's always-on instruments so admission and
// drain update them with plain atomic operations.
type poolMetrics struct {
	admitted *obs.Counter
	replaced *obs.Counter // replacement-by-fee admissions
	parked   *obs.Counter // admissions held in a future queue
	requeued *obs.Counter // deferred transactions re-inserted

	rejectFull        *obs.Counter
	rejectUnderpriced *obs.Counter
	rejectNonceGap    *obs.Counter
	rejectStale       *obs.Counter
	rejectReplay      *obs.Counter

	evictCapacity *obs.Counter
	evictAge      *obs.Counter

	depth *obs.Gauge // pending transactions (ready + parked)

	drainTime *obs.Histogram // DrainEpoch latency
	batchSize *obs.Histogram // transactions handed to dispatch per epoch
}

func newPoolMetrics(reg *obs.Registry) poolMetrics {
	return poolMetrics{
		admitted:          reg.Counter("mempool.admitted"),
		replaced:          reg.Counter("mempool.replaced"),
		parked:            reg.Counter("mempool.parked"),
		requeued:          reg.Counter("mempool.requeued"),
		rejectFull:        reg.Counter("mempool.reject.full"),
		rejectUnderpriced: reg.Counter("mempool.reject.underpriced"),
		rejectNonceGap:    reg.Counter("mempool.reject.nonce_gap"),
		rejectStale:       reg.Counter("mempool.reject.stale"),
		rejectReplay:      reg.Counter("mempool.reject.replay"),
		evictCapacity:     reg.Counter("mempool.evict.capacity"),
		evictAge:          reg.Counter("mempool.evict.age"),
		depth:             reg.Gauge("mempool.depth"),
		drainTime:         reg.TimeHistogram("mempool.drain_time"),
		batchSize:         reg.SizeHistogram("mempool.batch_size"),
	}
}
