// Package mempool is the ingestion layer between clients and the
// lookup dispatcher: a concurrent transaction pool, sharded by sender,
// that orders pending transactions by gas price, keeps per-sender
// nonce chains under the paper's relaxed-nonce rule (Sec. 4.2.1), and
// applies admission control so the epoch pipeline sees bounded,
// well-formed batches even under heavy open-loop traffic.
//
// Structure. Senders are hashed onto a fixed set of stripes, each a
// mutex-guarded map of per-sender queues, so concurrent SubmitTx
// traffic from distinct senders rarely contends. A sender's queue is a
// nonce-indexed map plus a progress watermark (the highest nonce ever
// handed to the dispatcher): the contiguous run of nonces just above
// max(committed nonce, progress) is ready; anything beyond a gap is
// parked in place — a future queue by construction — until the gap
// fills or age eviction reclaims it. Relaxed nonces make every pending
// nonce individually valid, but releasing them in order keeps a
// sender's low nonces from being invalidated by a committed higher
// nonce.
//
// Admission. A transaction is rejected with a typed error (testable
// with errors.Is) when the pool is at capacity and the newcomer does
// not strictly outbid the cheapest evictable transaction (ErrPoolFull,
// which also covers the per-sender pending cap), when it does not
// raise the fee of the same-nonce transaction it would replace
// (ErrUnderpriced, wrapping dispatch.ErrNonceReplay so callers see the
// duplicate-nonce cause), or when its nonce is further beyond the
// sender's chain head than the future queue accepts (ErrNonceGap).
// Nonces at or below the committed account nonce wrap
// dispatch.ErrStaleNonce.
//
// Draining. DrainEpoch pops ready transactions in gas-price order
// (ties broken by sender address, then nonce within a sender) through
// a heap of per-sender cursors, so the batch it hands the dispatcher
// is a pure function of the pool's pending multiset: any arrival order
// of the same transactions yields the same batches and, downstream,
// the same state root. Deferred transactions re-enter through Requeue,
// which rewinds the sender's progress watermark so they drain again
// next epoch.
//
// Every admission verdict, eviction and drain is counted in an
// obs.Registry and, when a recorder is attached, emitted as typed
// trace events (tx_admitted, tx_pool_rejected, tx_evicted,
// mempool_drained).
package mempool

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/dispatch"
	"cosplit/internal/obs"
)

// Config parameterises the pool. Zero values for Capacity, PerSender
// and MaxNonceGap fall back to the DefaultConfig values; MinGasPrice 0
// disables the price floor, MaxAgeEpochs 0 disables age eviction, and
// MaxBatch 0 lets DrainEpoch hand over every ready transaction.
type Config struct {
	// Capacity is the global cap on pending transactions. At capacity,
	// a newcomer must strictly outbid the cheapest chain tail in the
	// pool, which is evicted to make room; otherwise ErrPoolFull.
	Capacity int
	// PerSender caps one sender's pending transactions (ready plus
	// parked) — the per-sender rate cap of the admission layer.
	PerSender int
	// MaxNonceGap bounds how far beyond the sender's next expected
	// nonce a transaction may park; nonces further out are rejected
	// with ErrNonceGap instead of occupying future-queue slots forever.
	MaxNonceGap uint64
	// MinGasPrice is the admission price floor (0 = none).
	MinGasPrice uint64
	// MaxAgeEpochs evicts transactions that stayed pending for this
	// many epochs — the backstop that reclaims parked transactions
	// whose nonce gap never fills (0 = never).
	MaxAgeEpochs uint64
	// MaxBatch caps how many transactions one DrainEpoch hands to the
	// dispatcher (0 = all ready transactions).
	MaxBatch int
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		Capacity:     16384,
		PerSender:    64,
		MaxNonceGap:  64,
		MinGasPrice:  1,
		MaxAgeEpochs: 32,
	}
}

// NonceSource reports the committed account nonce the relaxed-nonce
// admission checks validate against; *chain.Accounts implements it.
type NonceSource interface {
	NonceOf(addr chain.Address) (uint64, bool)
}

// Precompiled rejection/eviction reasons for trace events.
const (
	reasonPoolFull      = "pool full"
	reasonUnderpriced   = "underpriced"
	reasonNonceGap      = "nonce gap"
	reasonStale         = "stale nonce"
	reasonReplay        = "replayed nonce"
	reasonUnknownSender = "unknown sender"
	reasonCapacity      = "capacity"
	reasonAge           = "age"
)

// stripeCount must be a power of two.
const stripeCount = 64

type entry struct {
	tx *chain.Tx
	// epoch the transaction was admitted (or requeued) in, for age
	// eviction.
	epoch uint64
}

// senderQueue is one sender's nonce chain: pending transactions keyed
// by nonce plus the progress watermark. It persists after draining so
// the watermark keeps rejecting nonces already handed downstream.
type senderQueue struct {
	pending map[uint64]*entry
	// progress is the highest nonce ever drained to the dispatcher.
	// Requeue rewinds it so deferred transactions drain again.
	progress uint64
}

// head returns the sender's chain head: the highest nonce the chain
// has consumed or the pool has handed out, whichever is further.
func (q *senderQueue) head(committed uint64) uint64 {
	if q.progress > committed {
		return q.progress
	}
	return committed
}

// contiguous reports whether every nonce strictly between head and n
// is pending, i.e. nonce n sits on (or extends) the contiguous ready
// run and is not parked behind a gap. The walk is bounded by the
// admission window (MaxNonceGap).
func (q *senderQueue) contiguous(head, n uint64) bool {
	for m := head + 1; m < n; m++ {
		if _, ok := q.pending[m]; !ok {
			return false
		}
	}
	return true
}

type stripe struct {
	mu      sync.Mutex
	senders map[chain.Address]*senderQueue
}

// Pool is the admission-controlled transaction pool. It is safe for
// concurrent use; only DrainEpoch ever holds more than one stripe
// lock, so submission and draining never deadlock. Under concurrent
// submission the global capacity is enforced approximately (the pool
// can transiently overshoot by the number of in-flight submitters).
type Pool struct {
	cfg    Config
	nonces NonceSource
	rec    obs.Recorder
	m      poolMetrics

	// epoch stamps admission events and age-tracks entries; DrainEpoch
	// advances it.
	epoch atomic.Uint64
	size  atomic.Int64

	stripes [stripeCount]stripe
}

// Option configures a Pool at construction time.
type Option func(*Pool)

// WithRecorder attaches a trace recorder to the pool's admission,
// eviction and drain events.
func WithRecorder(rec obs.Recorder) Option {
	return func(p *Pool) {
		if rec != nil {
			p.rec = rec
		}
	}
}

// WithRegistry registers the pool's always-on metrics in reg instead
// of a private registry.
func WithRegistry(reg *obs.Registry) Option {
	return func(p *Pool) { p.m = newPoolMetrics(reg) }
}

// New builds a pool validating nonces against src.
func New(cfg Config, src NonceSource, opts ...Option) *Pool {
	def := DefaultConfig()
	if cfg.Capacity <= 0 {
		cfg.Capacity = def.Capacity
	}
	if cfg.PerSender <= 0 {
		cfg.PerSender = def.PerSender
	}
	if cfg.MaxNonceGap == 0 {
		cfg.MaxNonceGap = def.MaxNonceGap
	}
	p := &Pool{cfg: cfg, nonces: src, rec: obs.Nop{}}
	p.m = newPoolMetrics(obs.NewRegistry())
	for i := range p.stripes {
		p.stripes[i].senders = make(map[chain.Address]*senderQueue)
	}
	p.epoch.Store(1)
	for _, o := range opts {
		o(p)
	}
	return p
}

// Config returns the pool's resolved configuration.
func (p *Pool) Config() Config { return p.cfg }

// Len returns the number of pending transactions (ready + parked).
func (p *Pool) Len() int { return int(p.size.Load()) }

func (p *Pool) stripeFor(a chain.Address) *stripe {
	// FNV-1a over the address bytes spreads senders across stripes.
	h := uint32(2166136261)
	for _, b := range a {
		h = (h ^ uint32(b)) * 16777619
	}
	return &p.stripes[h&(stripeCount-1)]
}

// Add admits a transaction. A nil return means the transaction is
// pending (possibly parked behind a nonce gap, possibly having
// replaced a cheaper same-nonce predecessor); a non-nil return wraps
// one of the package's sentinel errors — and, for nonce-related
// causes, the matching dispatch sentinel — with %w.
func (p *Pool) Add(tx *chain.Tx) error {
	ep := p.epoch.Load()
	if p.cfg.MinGasPrice > 0 && tx.GasPrice < p.cfg.MinGasPrice {
		p.m.rejectUnderpriced.Inc()
		p.rec.TxPoolRejected(ep, tx.ID, reasonUnderpriced)
		return fmt.Errorf("mempool: gas price %d below floor %d: %w",
			tx.GasPrice, p.cfg.MinGasPrice, ErrUnderpriced)
	}
	committed, known := p.nonces.NonceOf(tx.From)
	if !known {
		p.m.rejectStale.Inc()
		p.rec.TxPoolRejected(ep, tx.ID, reasonUnknownSender)
		return fmt.Errorf("mempool: %w %s", dispatch.ErrUnknownSender, tx.From)
	}

	st := p.stripeFor(tx.From)
	st.mu.Lock()
	q := st.senders[tx.From]
	if q == nil {
		q = &senderQueue{pending: make(map[uint64]*entry)}
		st.senders[tx.From] = q
	}
	head := q.head(committed)

	// Replacement-by-fee: a pending (sender, nonce) may be replaced by
	// a strictly better-paying transaction; anything else is a
	// duplicate-nonce submission.
	if old, ok := q.pending[tx.Nonce]; ok {
		if tx.GasPrice > old.tx.GasPrice {
			q.pending[tx.Nonce] = &entry{tx: tx, epoch: ep}
			parked := !q.contiguous(head, tx.Nonce)
			st.mu.Unlock()
			p.m.admitted.Inc()
			p.m.replaced.Inc()
			p.rec.TxAdmitted(ep, tx.ID, parked, true)
			return nil
		}
		oldPrice := old.tx.GasPrice
		st.mu.Unlock()
		p.m.rejectUnderpriced.Inc()
		p.rec.TxPoolRejected(ep, tx.ID, reasonUnderpriced)
		return fmt.Errorf("mempool: replacement for nonce %d needs gas price > %d, got %d: %w (%w)",
			tx.Nonce, oldPrice, tx.GasPrice, ErrUnderpriced, dispatch.ErrNonceReplay)
	}
	if tx.Nonce <= committed {
		st.mu.Unlock()
		p.m.rejectStale.Inc()
		p.rec.TxPoolRejected(ep, tx.ID, reasonStale)
		return fmt.Errorf("mempool: nonce %d at or below committed %d: %w",
			tx.Nonce, committed, dispatch.ErrStaleNonce)
	}
	if tx.Nonce <= head {
		// Between the committed nonce and the progress watermark: the
		// nonce was already drained this epoch and is in flight.
		st.mu.Unlock()
		p.m.rejectReplay.Inc()
		p.rec.TxPoolRejected(ep, tx.ID, reasonReplay)
		return fmt.Errorf("mempool: nonce %d already handed to dispatch: %w",
			tx.Nonce, dispatch.ErrNonceReplay)
	}
	if tx.Nonce > head+1+p.cfg.MaxNonceGap {
		st.mu.Unlock()
		p.m.rejectNonceGap.Inc()
		p.rec.TxPoolRejected(ep, tx.ID, reasonNonceGap)
		return fmt.Errorf("mempool: nonce %d is %d past next expected %d, window %d: %w",
			tx.Nonce, tx.Nonce-head-1, head+1, p.cfg.MaxNonceGap, ErrNonceGap)
	}
	if len(q.pending) >= p.cfg.PerSender {
		st.mu.Unlock()
		p.m.rejectFull.Inc()
		p.rec.TxPoolRejected(ep, tx.ID, reasonPoolFull)
		return fmt.Errorf("mempool: sender %s at per-sender cap %d: %w",
			tx.From, p.cfg.PerSender, ErrPoolFull)
	}

	// Global capacity: evict the cheapest chain tail if the newcomer
	// strictly outbids it. The stripe lock is released first — only
	// DrainEpoch may hold more than one stripe lock at a time.
	if p.size.Load() >= int64(p.cfg.Capacity) {
		st.mu.Unlock()
		victim, ok := p.evictCheapestTail(tx.GasPrice)
		if !ok {
			p.m.rejectFull.Inc()
			p.rec.TxPoolRejected(ep, tx.ID, reasonPoolFull)
			return fmt.Errorf("mempool: at capacity %d and gas price %d does not outbid the pool floor: %w (%w)",
				p.cfg.Capacity, tx.GasPrice, ErrPoolFull, ErrUnderpriced)
		}
		if victim != 0 {
			p.m.evictCapacity.Inc()
			p.rec.TxEvicted(ep, victim, reasonCapacity)
		}
		st.mu.Lock()
		// The queue may have moved while unlocked; a same-nonce racer
		// keeps the slot only if it pays at least as much.
		if old, ok := q.pending[tx.Nonce]; ok && old.tx.GasPrice >= tx.GasPrice {
			st.mu.Unlock()
			p.m.rejectUnderpriced.Inc()
			p.rec.TxPoolRejected(ep, tx.ID, reasonUnderpriced)
			return fmt.Errorf("mempool: replacement for nonce %d needs gas price > %d: %w (%w)",
				tx.Nonce, old.tx.GasPrice, ErrUnderpriced, dispatch.ErrNonceReplay)
		}
	}

	q.pending[tx.Nonce] = &entry{tx: tx, epoch: ep}
	parked := !q.contiguous(head, tx.Nonce)
	st.mu.Unlock()
	depth := p.size.Add(1)
	p.m.depth.Set(depth)
	p.m.admitted.Inc()
	if parked {
		p.m.parked.Inc()
	}
	p.rec.TxAdmitted(ep, tx.ID, parked, false)
	return nil
}

// evictCheapestTail finds the pool-wide cheapest chain tail (each
// sender's highest pending nonce — evicting mid-chain would open a
// gap) and removes it if newPrice strictly outbids it. The victim is
// chosen by (gas price asc, sender address desc), a total order over
// pool state, so eviction is deterministic for a given pool content.
// It returns the evicted transaction id (0 if a concurrent drain beat
// the removal) and whether room was made.
func (p *Pool) evictCheapestTail(newPrice uint64) (uint64, bool) {
	var (
		found     bool
		bestAddr  chain.Address
		bestNonce uint64
		bestPrice uint64
	)
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for sender, q := range st.senders {
			if len(q.pending) == 0 {
				continue
			}
			var tail uint64
			for n := range q.pending {
				if n > tail {
					tail = n
				}
			}
			price := q.pending[tail].tx.GasPrice
			if !found || price < bestPrice ||
				(price == bestPrice && bytes.Compare(sender[:], bestAddr[:]) > 0) {
				found, bestAddr, bestNonce, bestPrice = true, sender, tail, price
			}
		}
		st.mu.Unlock()
	}
	if !found || newPrice <= bestPrice {
		return 0, false
	}
	st := p.stripeFor(bestAddr)
	st.mu.Lock()
	defer st.mu.Unlock()
	q := st.senders[bestAddr]
	if q == nil {
		return 0, true
	}
	e, ok := q.pending[bestNonce]
	if !ok {
		return 0, true
	}
	delete(q.pending, bestNonce)
	p.m.depth.Set(p.size.Add(-1))
	return e.tx.ID, true
}

// Requeue re-inserts transactions the pipeline deferred (gas-limit
// overflow) without admission checks — they were already admitted and
// must not be dropped — and rewinds each sender's progress watermark
// so they are drained again next epoch.
func (p *Pool) Requeue(txs []*chain.Tx) {
	if len(txs) == 0 {
		return
	}
	ep := p.epoch.Load()
	for _, tx := range txs {
		st := p.stripeFor(tx.From)
		st.mu.Lock()
		q := st.senders[tx.From]
		if q == nil {
			q = &senderQueue{pending: make(map[uint64]*entry)}
			st.senders[tx.From] = q
		}
		if _, ok := q.pending[tx.Nonce]; !ok {
			p.size.Add(1)
		}
		q.pending[tx.Nonce] = &entry{tx: tx, epoch: ep}
		if q.progress >= tx.Nonce {
			q.progress = tx.Nonce - 1
		}
		st.mu.Unlock()
	}
	p.m.requeued.Add(int64(len(txs)))
	p.m.depth.Set(p.size.Load())
}

// cursor walks one sender's ready chain during a drain.
type cursor struct {
	sender chain.Address
	q      *senderQueue
	nonce  uint64
	price  uint64
}

// drainHeap orders cursors by gas price (highest first), ties by
// sender address (lowest first); a sender appears at most once, at its
// lowest ready nonce, so nonce order within a sender is preserved.
type drainHeap []cursor

func (h drainHeap) Len() int { return len(h) }
func (h drainHeap) Less(i, j int) bool {
	if h[i].price != h[j].price {
		return h[i].price > h[j].price
	}
	return bytes.Compare(h[i].sender[:], h[j].sender[:]) < 0
}
func (h drainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *drainHeap) Push(x any)   { *h = append(*h, x.(cursor)) }
func (h *drainHeap) Pop() any     { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// DrainEpoch pulls the epoch's batch: every ready transaction (or the
// MaxBatch highest-priority ones), in gas-price order with per-sender
// nonce chains kept intact. It first evicts transactions older than
// MaxAgeEpochs. The batch is a deterministic function of the pending
// multiset and the committed nonces — arrival order never matters.
func (p *Pool) DrainEpoch(epoch uint64) []*chain.Tx {
	start := time.Now()
	p.epoch.Store(epoch)

	// DrainEpoch is the only path that holds multiple stripe locks
	// (always in index order); every other path holds at most one.
	for i := range p.stripes {
		p.stripes[i].mu.Lock()
	}

	var aged []uint64
	if p.cfg.MaxAgeEpochs > 0 {
		for i := range p.stripes {
			for _, q := range p.stripes[i].senders {
				for n, e := range q.pending {
					if epoch >= e.epoch+p.cfg.MaxAgeEpochs {
						delete(q.pending, n)
						p.size.Add(-1)
						aged = append(aged, e.tx.ID)
					}
				}
			}
		}
	}

	h := drainHeap{}
	for i := range p.stripes {
		for sender, q := range p.stripes[i].senders {
			if len(q.pending) == 0 {
				continue
			}
			committed, _ := p.nonces.NonceOf(sender)
			next := q.head(committed) + 1
			if e, ok := q.pending[next]; ok {
				h = append(h, cursor{sender: sender, q: q, nonce: next, price: e.tx.GasPrice})
			}
		}
	}
	heap.Init(&h)

	var batch []*chain.Tx
	for h.Len() > 0 && (p.cfg.MaxBatch <= 0 || len(batch) < p.cfg.MaxBatch) {
		c := heap.Pop(&h).(cursor)
		e := c.q.pending[c.nonce]
		delete(c.q.pending, c.nonce)
		c.q.progress = c.nonce
		p.size.Add(-1)
		batch = append(batch, e.tx)
		if nxt, ok := c.q.pending[c.nonce+1]; ok {
			heap.Push(&h, cursor{sender: c.sender, q: c.q, nonce: c.nonce + 1, price: nxt.tx.GasPrice})
		}
	}

	// Split what stays behind into still-ready (MaxBatch cut them off)
	// and parked (waiting on a nonce gap).
	ready := 0
	for i := range p.stripes {
		for sender, q := range p.stripes[i].senders {
			if len(q.pending) == 0 {
				continue
			}
			committed, _ := p.nonces.NonceOf(sender)
			for n := q.head(committed) + 1; ; n++ {
				if _, ok := q.pending[n]; !ok {
					break
				}
				ready++
			}
		}
	}
	remaining := int(p.size.Load())
	parked := remaining - ready

	for i := len(p.stripes) - 1; i >= 0; i-- {
		p.stripes[i].mu.Unlock()
	}

	// Map iteration visited aged entries in random order; sort by id so
	// the trace stays deterministic.
	sort.Slice(aged, func(i, j int) bool { return aged[i] < aged[j] })
	for _, id := range aged {
		p.m.evictAge.Inc()
		p.rec.TxEvicted(epoch, id, reasonAge)
	}

	took := time.Since(start)
	p.m.depth.Set(int64(remaining))
	p.m.batchSize.Observe(int64(len(batch)))
	p.m.drainTime.ObserveDuration(took)
	p.rec.MempoolDrained(epoch, len(batch), remaining, parked, took)
	return batch
}
