package mempool

import "errors"

// Sentinel errors for admission-control rejections. SubmitTx callers
// test with errors.Is; the returned errors wrap these (and, where the
// cause is nonce-related, the matching dispatch sentinel) with %w.
var (
	// ErrPoolFull rejects a transaction the pool has no room for: the
	// global capacity is reached and the newcomer does not outbid the
	// cheapest evictable transaction, or the sender is over its
	// per-sender pending cap.
	ErrPoolFull = errors.New("mempool full")
	// ErrUnderpriced rejects a transaction below the admission price
	// floor, or a replacement-by-fee that does not strictly raise the
	// gas price of the pending transaction it would replace.
	ErrUnderpriced = errors.New("underpriced")
	// ErrNonceGap rejects a nonce too far ahead of the sender's chain
	// head to park: the future queue only holds nonces within
	// Config.MaxNonceGap of the next expected nonce.
	ErrNonceGap = errors.New("nonce gap too large")
)
