package shard_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"cosplit/internal/dispatch"
	"cosplit/internal/mempool"
	"cosplit/internal/obs"
	"cosplit/internal/shard"
)

// dispatchLog records the exact order the dispatcher commits each
// epoch's batch, keyed back to (sender, nonce) so the sequence is
// comparable across runs that assign different transaction IDs.
type dispatchLog struct {
	obs.Nop
	keys    map[uint64]string
	byEpoch map[uint64][]string
}

func newDispatchLog() *dispatchLog {
	return &dispatchLog{keys: make(map[uint64]string), byEpoch: make(map[uint64][]string)}
}

func (l *dispatchLog) TxDispatched(epoch, tx uint64, shard int, reason string) {
	l.byEpoch[epoch] = append(l.byEpoch[epoch], l.keys[tx])
}

// TestMempoolDuplicateNonceOneEpoch exercises both duplicate-nonce
// outcomes within a single epoch: an equal-priced duplicate is refused
// at admission with typed, errors.Is-able sentinels, and a
// higher-priced duplicate replaces the original so exactly one
// transaction for that nonce commits.
func TestMempoolDuplicateNonceOneEpoch(t *testing.T) {
	net, ft, users := deployFT(t, 2, 3, true,
		shard.WithMempool(mempool.DefaultConfig()),
		shard.WithConsensusModel(false))
	alice, bob, carol := users[0], users[1], users[2]

	if _, err := net.SubmitTx(transferTx(alice, bob, ft, 1, 10)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Same nonce at the same price: rejected, and the error carries
	// both the pricing sentinel and the dispatcher's replay sentinel.
	_, err := net.SubmitTx(transferTx(alice, bob, ft, 1, 99))
	if !errors.Is(err, mempool.ErrUnderpriced) || !errors.Is(err, dispatch.ErrNonceReplay) {
		t.Fatalf("duplicate at equal price: got %v, want ErrUnderpriced wrapping ErrNonceReplay", err)
	}
	// Same nonce at a strictly higher price: replacement-by-fee.
	repl := transferTx(alice, carol, ft, 1, 7)
	repl.GasPrice = 5
	if _, err := net.SubmitTx(repl); err != nil {
		t.Fatalf("replacement: %v", err)
	}

	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 1 || stats.Failed != 0 || stats.Rejected != 0 {
		t.Fatalf("want exactly the replacement committed, got %+v", stats)
	}
	// The replacement (alice→carol, 7) must be the surviving effect.
	if got := balanceOf(t, net, ft, carol); got != 7 {
		t.Fatalf("carol balance = %d, want 7 (replacement effect)", got)
	}
	if got := balanceOf(t, net, ft, bob); got != 0 {
		t.Fatalf("bob balance = %d, want 0 (original transfer replaced)", got)
	}
}

// TestMempoolNonceGapAcrossEpochs parks out-of-order nonces in one
// epoch and releases them in a later epoch once the gap fills, then
// checks the final state is bit-identical to a sequential in-order run
// through the legacy Submit path.
func TestMempoolNonceGapAcrossEpochs(t *testing.T) {
	net, ft, users := deployFT(t, 2, 2, true,
		shard.WithMempool(mempool.DefaultConfig()),
		shard.WithConsensusModel(false))
	alice, bob := users[0], users[1]

	// Nonces 1,2 are ready; 4,5 park behind the missing 3.
	for _, n := range []uint64{1, 2, 4, 5} {
		if _, err := net.SubmitTx(transferTx(alice, bob, ft, n, n)); err != nil {
			t.Fatalf("submit nonce %d: %v", n, err)
		}
	}
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 2 {
		t.Fatalf("epoch 1: committed %d, want 2 (nonces 1,2; 4,5 parked)", stats.Committed)
	}
	if depth := net.Pool().Len(); depth != 2 {
		t.Fatalf("epoch 1: pool depth %d, want 2 parked", depth)
	}

	// Filling the gap releases the whole chain next epoch.
	if _, err := net.SubmitTx(transferTx(alice, bob, ft, 3, 3)); err != nil {
		t.Fatalf("gap fill: %v", err)
	}
	stats, err = net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 3 {
		t.Fatalf("epoch 2: committed %d, want 3 (nonces 3,4,5)", stats.Committed)
	}
	if depth := net.Pool().Len(); depth != 0 {
		t.Fatalf("epoch 2: pool depth %d, want 0", depth)
	}

	// Sequential control: same five transfers, in order, legacy path.
	ctl, ctlFT, ctlUsers := deployFT(t, 2, 2, true, shard.WithConsensusModel(false))
	for _, n := range []uint64{1, 2, 3, 4, 5} {
		ctl.Submit(transferTx(ctlUsers[0], ctlUsers[1], ctlFT, n, n))
	}
	if _, err := ctl.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	_ = ctlFT
	if got, want := net.StateRoot(), ctl.StateRoot(); got != want {
		t.Fatalf("gap-fill state root %s != sequential control %s", got, want)
	}
}

// TestMempoolInterleavedSendersParallel drains an interleaved
// multi-sender pool under the parallel shard pipeline and requires the
// per-epoch dispatch sequences and final state root to be bit-identical
// to the sequential pipeline.
func TestMempoolInterleavedSendersParallel(t *testing.T) {
	run := func(parallel bool) (*dispatchLog, string) {
		log := newDispatchLog()
		cfg := mempool.DefaultConfig()
		cfg.MaxBatch = 13
		net, ft, users := deployFT(t, 4, 12, true,
			shard.WithMempool(cfg),
			shard.WithParallelism(parallel),
			shard.WithConsensusModel(false),
			shard.WithRecorder(log))
		// Interleave: every sender's nonce n before anyone's nonce n+1,
		// with per-tx prices that force cross-sender priority mixing.
		for n := uint64(1); n <= 4; n++ {
			for i, u := range users {
				tx := transferTx(u, users[(i+1)%len(users)], ft, n, 1)
				tx.GasPrice = 1 + (uint64(i)*7+n*3)%5
				id, err := net.SubmitTx(tx)
				if err != nil {
					t.Fatalf("submit user %d nonce %d: %v", i, n, err)
				}
				log.keys[id] = fmt.Sprintf("%s/%d", u, n)
			}
		}
		for net.MempoolSize() > 0 {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		return log, net.StateRoot()
	}

	seqLog, seqRoot := run(false)
	parLog, parRoot := run(true)
	if seqRoot != parRoot {
		t.Fatalf("parallel state root %s != sequential %s", parRoot, seqRoot)
	}
	if len(seqLog.byEpoch) < 2 {
		t.Fatalf("MaxBatch 13 over 48 txs should span epochs, got %d", len(seqLog.byEpoch))
	}
	for ep, want := range seqLog.byEpoch {
		got := parLog.byEpoch[ep]
		if len(got) != len(want) {
			t.Fatalf("epoch %d: parallel batch %d txs, sequential %d", ep, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("epoch %d pos %d: parallel dispatched %s, sequential %s", ep, i, got[i], want[i])
			}
		}
	}
}

// TestNetworkDrainDeterminism is the acceptance bar for the mempool:
// the same submitted transaction multiset, in any arrival order, must
// yield the same per-epoch batches (checked via the dispatcher's
// commit order) and the same final state root. Three shuffle seeds,
// compared against the identity order. Also checks the pool's
// admission counters surface in the metrics snapshot.
func TestNetworkDrainDeterminism(t *testing.T) {
	const nUsers, chainLen = 10, 5

	run := func(seed int64) (*dispatchLog, string, obs.Snapshot) {
		log := newDispatchLog()
		reg := obs.NewRegistry()
		cfg := mempool.DefaultConfig()
		cfg.MaxBatch = 17
		net, ft, users := deployFT(t, 4, nUsers, true,
			shard.WithMempool(cfg),
			shard.WithConsensusModel(false),
			shard.WithRecorder(log),
			shard.WithRegistry(reg))
		type spec struct {
			user  int
			nonce uint64
		}
		var specs []spec
		for i := range users {
			for n := uint64(1); n <= chainLen; n++ {
				specs = append(specs, spec{i, n})
			}
		}
		if seed != 0 {
			rand.New(rand.NewSource(seed)).Shuffle(len(specs), func(i, j int) {
				specs[i], specs[j] = specs[j], specs[i]
			})
		}
		for _, s := range specs {
			u := users[s.user]
			tx := transferTx(u, users[(s.user+1)%nUsers], ft, s.nonce, 1)
			tx.GasPrice = 1 + (uint64(s.user)*11+s.nonce*5)%7
			id, err := net.SubmitTx(tx)
			if err != nil {
				t.Fatalf("seed %d: submit user %d nonce %d: %v", seed, s.user, s.nonce, err)
			}
			log.keys[id] = fmt.Sprintf("%s/%d", u, s.nonce)
		}
		for net.MempoolSize() > 0 {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		return log, net.StateRoot(), reg.Snapshot()
	}

	refLog, refRoot, snap := run(0)
	if got := snap.Counters["mempool.admitted"]; got != nUsers*chainLen {
		t.Fatalf("mempool.admitted = %d, want %d", got, nUsers*chainLen)
	}
	if _, ok := snap.Histograms["mempool.batch_size"]; !ok {
		t.Fatal("mempool.batch_size histogram missing from snapshot")
	}
	for _, seed := range []int64{1, 2, 3} {
		log, root, _ := run(seed)
		if root != refRoot {
			t.Fatalf("seed %d: state root %s != reference %s", seed, root, refRoot)
		}
		if len(log.byEpoch) != len(refLog.byEpoch) {
			t.Fatalf("seed %d: %d epochs, reference %d", seed, len(log.byEpoch), len(refLog.byEpoch))
		}
		for ep, want := range refLog.byEpoch {
			got := log.byEpoch[ep]
			if len(got) != len(want) {
				t.Fatalf("seed %d epoch %d: batch %d txs, reference %d", seed, ep, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d epoch %d pos %d: dispatched %s, reference %s",
						seed, ep, i, got[i], want[i])
				}
			}
		}
	}
}
