package shard_test

import (
	"math/big"
	"math/rand"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

func u128(v uint64) value.Int { return value.Uint128(v) }

// ftQuery is the paper's FungibleToken sharding selection (Sec. 5.2).
func ftQuery() *signature.Query {
	return &signature.Query{
		Transitions: []string{"Mint", "Transfer", "TransferFrom"},
		WeakReads:   []string{"balances", "allowances"},
	}
}

func ftParams(owner chain.Address) map[string]value.Value {
	return map[string]value.Value{
		"contract_owner": owner.Value(),
		"token_name":     value.Str{S: "Test"},
		"token_symbol":   value.Str{S: "TST"},
		"decimals":       value.Uint32V(6),
		"init_supply":    u128(1_000_000),
	}
}

// deployFT builds a network with nUsers funded users and a deployed
// FungibleToken (owner = user 0, or the dedicated deployer account if
// there are no users); sharded controls signature presence; extra
// options are passed through to NewNetwork. Deployment is done by a
// separate account so user nonces start fresh at 1.
func deployFT(t testing.TB, numShards, nUsers int, sharded bool, opts ...shard.Option) (*shard.Network, chain.Address, []chain.Address) {
	t.Helper()
	net := shard.NewNetwork(append([]shard.Option{shard.WithShards(numShards)}, opts...)...)
	deployer := chain.AddrFromUint(999_999_999)
	net.CreateUser(deployer, 1_000_000_000)
	users := make([]chain.Address, nUsers)
	for i := range users {
		users[i] = chain.AddrFromUint(uint64(i + 1))
		net.CreateUser(users[i], 1_000_000_000)
	}
	owner := deployer
	if nUsers > 0 {
		owner = users[0]
	}
	var q *signature.Query
	if sharded {
		q = ftQuery()
	}
	addr, err := net.DeployContract(deployer, contracts.FungibleToken, ftParams(owner), q)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return net, addr, users
}

func transferTx(from, to, contract chain.Address, nonce uint64, amount uint64) *chain.Tx {
	return &chain.Tx{
		Kind:       chain.TxCall,
		From:       from,
		To:         contract,
		Nonce:      nonce,
		Amount:     big.NewInt(0),
		GasLimit:   10_000,
		GasPrice:   1,
		Transition: "Transfer",
		Args: map[string]value.Value{
			"to":     to.Value(),
			"amount": u128(amount),
		},
	}
}

func balanceOf(t testing.TB, net *shard.Network, contract, user chain.Address) uint64 {
	t.Helper()
	c := net.Contracts.Get(contract)
	v, ok, err := c.Snapshot().MapGet("balances", []value.Value{user.Value()})
	if err != nil {
		t.Fatalf("MapGet: %v", err)
	}
	if !ok {
		return 0
	}
	return v.(value.Int).V.Uint64()
}

func TestEndToEndTransfer(t *testing.T) {
	net, contract, users := deployFT(t, 3, 4, true)
	owner := users[0]

	id := net.Submit(transferTx(owner, users[1], contract, 1, 500))
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	if stats.Committed != 1 {
		t.Fatalf("committed = %d, want 1 (stats %+v)", stats.Committed, stats)
	}
	rec := net.Receipt(id)
	if rec == nil || !rec.Success {
		t.Fatalf("receipt = %+v", rec)
	}
	if got := balanceOf(t, net, contract, users[1]); got != 500 {
		t.Errorf("recipient balance = %d, want 500", got)
	}
	if got := balanceOf(t, net, contract, owner); got != 1_000_000-500 {
		t.Errorf("owner balance = %d, want %d", got, 1_000_000-500)
	}
}

// TestShardedMatchesSequential is the paper's correctness property:
// executing a transaction batch through the sharded pipeline produces
// the same contract state as a 1-shard (fully sequential) execution.
func TestShardedMatchesSequential(t *testing.T) {
	const nUsers = 20
	const nTxs = 200
	rng := rand.New(rand.NewSource(42))

	type spec struct {
		from, to int
		amount   uint64
	}
	specs := make([]spec, nTxs)
	for i := range specs {
		from := rng.Intn(nUsers)
		to := rng.Intn(nUsers)
		for to == from {
			to = rng.Intn(nUsers)
		}
		specs[i] = spec{from: from, to: to, amount: uint64(rng.Intn(50) + 1)}
	}

	run := func(numShards int) map[chain.Address]uint64 {
		net, contract, users := deployFT(t, numShards, nUsers, true)
		owner := users[0]
		// Seed every user with tokens so transfers do not depend on
		// ordering for success.
		nonce := uint64(1)
		for _, u := range users[1:] {
			net.Submit(&chain.Tx{
				Kind: chain.TxCall, From: owner, To: contract, Nonce: nonce,
				Amount: big.NewInt(0), GasLimit: 10_000, GasPrice: 1,
				Transition: "Mint",
				Args: map[string]value.Value{
					"recipient": u.Value(), "amount": u128(100_000),
				},
			})
			nonce++
		}
		if _, err := net.RunEpoch(); err != nil {
			t.Fatalf("seed epoch: %v", err)
		}
		nonces := make([]uint64, nUsers)
		nonces[0] = nonce - 1
		for _, s := range specs {
			nonces[s.from]++
			net.Submit(transferTx(users[s.from], users[s.to], contract, nonces[s.from], s.amount))
		}
		for net.MempoolSize() > 0 {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatalf("epoch: %v", err)
			}
		}
		out := make(map[chain.Address]uint64, nUsers)
		for _, u := range users {
			out[u] = balanceOf(t, net, contract, u)
		}
		return out
	}

	sequential := run(1)
	for _, shards := range []int{2, 3, 5} {
		got := run(shards)
		for addr, want := range sequential {
			if got[addr] != want {
				t.Errorf("%d shards: balance[%s] = %d, want %d", shards, addr, got[addr], want)
			}
		}
	}
}

// TestAliasedTransferGoesToDS: a self-transfer violates NoAliases and
// must be routed to the DS committee, still executing correctly.
func TestAliasedTransferGoesToDS(t *testing.T) {
	net, contract, users := deployFT(t, 3, 2, true)
	owner := users[0]
	id := net.Submit(transferTx(owner, owner, contract, 1, 100))
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	rec := net.Receipt(id)
	if rec == nil || !rec.Success {
		t.Fatalf("aliased transfer failed: %+v", rec)
	}
	if rec.Shard != -1 {
		t.Errorf("aliased transfer executed in shard %d, want DS (-1)", rec.Shard)
	}
	if stats.DSCount != 1 {
		t.Errorf("DSCount = %d, want 1", stats.DSCount)
	}
	// Self-transfer must leave the balance unchanged.
	if got := balanceOf(t, net, contract, owner); got != 1_000_000 {
		t.Errorf("owner balance = %d, want unchanged 1000000", got)
	}
}

// TestUnselectedTransitionGoesToDS: transitions outside the sharding
// signature are DS work.
func TestUnselectedTransitionGoesToDS(t *testing.T) {
	net, contract, users := deployFT(t, 3, 2, true)
	id := net.Submit(&chain.Tx{
		Kind: chain.TxCall, From: users[0], To: contract, Nonce: 1,
		Amount: big.NewInt(0), GasLimit: 10_000, GasPrice: 1,
		Transition: "Approve",
		Args: map[string]value.Value{
			"spender": users[1].Value(), "amount": u128(10),
		},
	})
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	rec := net.Receipt(id)
	if rec == nil || !rec.Success || rec.Shard != -1 {
		t.Fatalf("Approve receipt = %+v, want DS success", rec)
	}
}

// TestNonceReplayRejected: replaying a nonce must be rejected.
func TestNonceReplayRejected(t *testing.T) {
	net, contract, users := deployFT(t, 3, 3, true)
	owner := users[0]
	id1 := net.Submit(transferTx(owner, users[1], contract, 1, 10))
	id2 := net.Submit(transferTx(owner, users[2], contract, 1, 10)) // same nonce
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	r1, r2 := net.Receipt(id1), net.Receipt(id2)
	if r1 == nil || !r1.Success {
		t.Errorf("first use of nonce must succeed: %+v", r1)
	}
	if r2 == nil || r2.Success {
		t.Errorf("nonce replay must be rejected: %+v", r2)
	}
	// A stale nonce in a later epoch is also rejected.
	id3 := net.Submit(transferTx(owner, users[1], contract, 1, 10))
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if r3 := net.Receipt(id3); r3 == nil || r3.Success {
		t.Errorf("stale nonce must be rejected: %+v", r3)
	}
}

// TestRelaxedNonceGaps: nonces with gaps are processed (Sec. 4.2.1).
func TestRelaxedNonceGaps(t *testing.T) {
	net, contract, users := deployFT(t, 3, 3, true)
	owner := users[0]
	idA := net.Submit(transferTx(owner, users[1], contract, 2, 10)) // gap: nonce 1 unused
	idB := net.Submit(transferTx(owner, users[2], contract, 5, 10))
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if r := net.Receipt(idA); r == nil || !r.Success {
		t.Errorf("gapped nonce 2 must be accepted: %+v", r)
	}
	if r := net.Receipt(idB); r == nil || !r.Success {
		t.Errorf("gapped nonce 5 must be accepted: %+v", r)
	}
}

// TestBaselineContractRouting: without a signature, same-shard calls
// stay in-shard and cross-shard calls go to DS.
func TestBaselineContractRouting(t *testing.T) {
	net, contract, _ := deployFT(t, 3, 0, false)
	_ = contract
	contractShard := chain.ShardOf(contract, 3)

	// Find a user in the contract's shard and one outside it.
	var inUser, outUser chain.Address
	for i := uint64(100); ; i++ {
		a := chain.AddrFromUint(i)
		if chain.ShardOf(a, 3) == contractShard && inUser == (chain.Address{}) {
			inUser = a
		}
		if chain.ShardOf(a, 3) != contractShard && outUser == (chain.Address{}) {
			outUser = a
		}
		if inUser != (chain.Address{}) && outUser != (chain.Address{}) {
			break
		}
	}
	net.CreateUser(inUser, 1_000_000)
	net.CreateUser(outUser, 1_000_000)

	idIn := net.Submit(transferTx(inUser, outUser, contract, 1, 0))
	idOut := net.Submit(transferTx(outUser, inUser, contract, 1, 0))
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	rIn, rOut := net.Receipt(idIn), net.Receipt(idOut)
	if rIn == nil || rIn.Shard != contractShard {
		t.Errorf("in-shard call routed to %+v, want shard %d", rIn, contractShard)
	}
	if rOut == nil || rOut.Shard != -1 {
		t.Errorf("cross-shard call routed to %+v, want DS", rOut)
	}
}

// TestMintScalesAcrossShards: Mint has no ownership constraints, so a
// single-sender mint workload spreads across all shards (Sec. 5.2.1,
// the "NFT mint" observation applied to FT).
func TestMintScalesAcrossShards(t *testing.T) {
	net, contract, users := deployFT(t, 3, 1, true)
	owner := users[0]
	for i := 0; i < 60; i++ {
		net.Submit(&chain.Tx{
			Kind: chain.TxCall, From: owner, To: contract, Nonce: uint64(i + 1),
			Amount: big.NewInt(0), GasLimit: 10_000, GasPrice: 1,
			Transition: "Mint",
			Args: map[string]value.Value{
				"recipient": chain.AddrFromUint(uint64(1000 + i)).Value(),
				"amount":    u128(5),
			},
		})
	}
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 60 {
		t.Fatalf("committed = %d (failed %d rejected %d), want 60", stats.Committed, stats.Failed, stats.Rejected)
	}
	for s, n := range stats.PerShard {
		if n == 0 {
			t.Errorf("shard %d processed no mints; want balanced spread %v", s, stats.PerShard)
		}
	}
	// total_supply must reflect every mint exactly once (IntMerge).
	c := net.Contracts.Get(contract)
	ts, err := c.Snapshot().LoadField("total_supply")
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.(value.Int).V.Uint64(); got != 1_000_000+60*5 {
		t.Errorf("total_supply = %d, want %d", got, 1_000_000+60*5)
	}
}

// TestSingleSourceTransfersSerialise: all transfers from one sender
// own the same balance entry and land in one shard ("FT fund").
func TestSingleSourceTransfersSerialise(t *testing.T) {
	net, contract, users := deployFT(t, 3, 1, true)
	owner := users[0]
	for i := 0; i < 30; i++ {
		net.Submit(transferTx(owner, chain.AddrFromUint(uint64(2000+i)), contract, uint64(i+1), 1))
	}
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, n := range stats.PerShard {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Errorf("single-source transfers spread over %d shards, want 1 (%v)", nonEmpty, stats.PerShard)
	}
}

var _ = ast.TyUint128
