package shard_test

import (
	"errors"
	"math/big"
	"strings"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/mempool"
	"cosplit/internal/shard"
)

// TestReceiptErrSurvivesRequeue drives a transaction through the
// mempool requeue path — deferred by the shard gas limit in its first
// epoch, re-drained and failed in the next — and asserts the failure
// receipt's typed error still matches the executor sentinel with
// errors.Is, carrying the transaction's identity in the message.
func TestReceiptErrSurvivesRequeue(t *testing.T) {
	net := shard.NewNetwork(
		shard.WithShards(1),
		shard.WithGasLimits(3, 1000),
		shard.WithConsensusModel(false),
		shard.WithMempool(mempool.DefaultConfig()),
	)
	alice := chain.AddrFromUint(10)
	bob := chain.AddrFromUint(11)
	poor := chain.AddrFromUint(12)
	net.CreateUser(alice, 1_000_000)
	net.CreateUser(bob, 0)
	net.CreateUser(poor, 50) // covers gas, not the attempted amount

	transfer := func(from, to chain.Address, nonce, amount, gasPrice uint64) *chain.Tx {
		return &chain.Tx{
			Kind:     chain.TxTransfer,
			From:     from,
			To:       to,
			Nonce:    nonce,
			Amount:   new(big.Int).SetUint64(amount),
			GasLimit: 10,
			GasPrice: gasPrice,
		}
	}
	// Three well-priced transfers fill the 3-gas epoch; the underpriced
	// doomed transfer drains last and is deferred past the limit.
	for n := uint64(1); n <= 3; n++ {
		if _, err := net.SubmitTx(transfer(alice, bob, n, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	doomed, err := net.SubmitTx(transfer(poor, bob, 1, 1000, 1))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if rec := net.Receipt(doomed); rec != nil {
		t.Fatalf("doomed tx processed in epoch 1, want deferral: %+v", rec)
	}
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	rec := net.Receipt(doomed)
	if rec == nil {
		t.Fatal("doomed tx has no receipt after requeue epoch")
	}
	if rec.Success {
		t.Fatal("doomed tx succeeded, want insufficient balance")
	}
	if rec.Epoch != 2 {
		t.Errorf("doomed tx executed in epoch %d, want 2 (after requeue)", rec.Epoch)
	}
	if !errors.Is(rec.Err, shard.ErrInsufficientBalance) {
		t.Errorf("receipt Err = %v, want errors.Is ErrInsufficientBalance", rec.Err)
	}
	if !strings.Contains(rec.Error, "sender") || !strings.Contains(rec.Error, "nonce 1") {
		t.Errorf("receipt Error %q lacks tx identity context", rec.Error)
	}
	if rec.Error != rec.Err.Error() {
		t.Errorf("string/typed error mismatch: %q vs %q", rec.Error, rec.Err)
	}
}
