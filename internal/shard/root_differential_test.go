package shard_test

import (
	"testing"

	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// TestIncrementalRootMatchesRecompute is the incremental trie's
// differential proof: after every committed epoch, across every
// evaluation contract, stream seed, and pipeline mode, the
// incrementally maintained state root must equal a from-scratch
// recomputation over the full network state. The incremental root is
// what ships (O(delta) per epoch); the recompute is the test-only
// oracle (O(state)) — any divergence means a delta was applied to the
// state without reaching the trie, or vice versa.
func TestIncrementalRootMatchesRecompute(t *testing.T) {
	workloads := []string{
		"FT transfer",        // FungibleToken: map mutations, transfers
		"NFT mint",           // NonfungibleToken: fresh map keys each tx
		"CF donate",          // Crowdfunding: mixed scalar + map updates
		"ProofIPFS register", // registry: insert-heavy
		"UD bestow",          // domain records: nested keypaths
	}
	seeds := []int64{1, 7, 42}
	modes := append([]struct {
		name     string
		parallel bool
		intra    int
	}{{"sequential", false, 0}}, execModes...)

	for _, name := range workloads {
		for _, seed := range seeds {
			for _, m := range modes {
				w := namedWorkload(t, name, seed)
				env, err := workload.Provision(w, true,
					shard.WithShards(8),
					shard.WithGasLimits(200_000, 200_000),
					shard.WithConsensusModel(false),
					shard.WithParallelism(m.parallel),
					shard.WithIntraShardParallelism(m.intra),
				)
				if err != nil {
					t.Fatal(err)
				}
				// Provisioning itself ran setup epochs: check the baseline
				// before any randomized traffic.
				if inc, full := env.Net.StateRoot(), env.Net.RecomputeStateRoot(); inc != full {
					t.Fatalf("%s/seed%d/%s: post-genesis root skew:\n  incremental %s\n  recomputed  %s",
						name, seed, m.name, inc, full)
				}
				const epochs, txsPerEpoch = 2, 300
				for e := 0; e < epochs; e++ {
					for i := env.Net.MempoolSize(); i < txsPerEpoch; i++ {
						env.Net.Submit(w.Next(env))
					}
					if _, err := env.Net.RunEpoch(); err != nil {
						t.Fatalf("%s/seed%d/%s: epoch %d: %v", name, seed, m.name, e, err)
					}
					if inc, full := env.Net.StateRoot(), env.Net.RecomputeStateRoot(); inc != full {
						t.Fatalf("%s/seed%d/%s: epoch %d root skew:\n  incremental %s\n  recomputed  %s",
							name, seed, m.name, e, inc, full)
					}
				}
			}
		}
	}
}
