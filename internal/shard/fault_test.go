package shard_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/consensus"
	"cosplit/internal/fault"
	"cosplit/internal/mempool"
	"cosplit/internal/obs"
	"cosplit/internal/shard"
)

// faultEvents captures the fault-recovery trace events (everything
// else is a no-op), so tests can assert the pipeline's bookkeeping
// without parsing a journal.
type faultEvents struct {
	obs.Nop
	mu          sync.Mutex
	faults      []string
	viewChanges []time.Duration
	escalations []string
}

func (f *faultEvents) ShardFault(epoch uint64, s int, kind string, lost int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, fmt.Sprintf("e%d/s%d/%s/lost=%d", epoch, s, kind, lost))
}

func (f *faultEvents) ViewChange(epoch uint64, s int, took time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.viewChanges = append(f.viewChanges, took)
}

func (f *faultEvents) ShardEscalated(epoch uint64, s, txs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.escalations = append(f.escalations, fmt.Sprintf("e%d/s%d/txs=%d", epoch, s, txs))
}

// TestFaultPlanDeterminism: under a seeded generated fault plan the
// pipeline stays bit-identical — across repeated runs and across all
// four execution modes. Lost batches, requeues, view changes and
// escalations must all replay exactly.
func TestFaultPlanDeterminism(t *testing.T) {
	spec := fault.Spec{CrashProb: 0.2, DropProb: 0.1, CorruptProb: 0.1, StraggleProb: 0.2}
	plan := fault.Generate(7, spec)
	reg := obs.NewRegistry()
	seq := runPipeline(t, namedWorkload(t, "FT transfer", 1), false, 0,
		shard.WithFaults(plan), shard.WithRegistry(reg))
	if lost := reg.Snapshot().Counters["fault.lost_txs"]; lost == 0 {
		t.Fatal("fault plan injected no block losses; the determinism check is vacuous")
	}
	for run := 0; run < 2; run++ {
		again := runPipeline(t, namedWorkload(t, "FT transfer", 1), false, 0,
			shard.WithFaults(plan))
		diffResults(t, fmt.Sprintf("sequential rerun %d", run), seq, again)
	}
	for _, m := range execModes {
		got := runPipeline(t, namedWorkload(t, "FT transfer", 1), m.parallel, m.intra,
			shard.WithFaults(plan))
		diffResults(t, m.name, seq, got)
	}
}

// TestEmptyFaultPlanMatchesGoldenTrace: attaching an empty fault plan
// (no spec, no overrides) leaves the normalised JSONL trace
// byte-identical to the recorded golden — the fault path must be
// invisible until a directive actually fires.
func TestEmptyFaultPlanMatchesGoldenTrace(t *testing.T) {
	plans := map[string]*fault.Plan{
		"nil":        nil,
		"new":        fault.New(),
		"zero-spec":  fault.Generate(99, fault.Spec{}),
		"parsed":     mustParse(t, "42:"),
		"hand-reset": fault.New(),
	}
	want, err := os.ReadFile(filepath.Join("testdata", "trace_golden.jsonl"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			var tick time.Duration
			journal := obs.NewJournal(&buf, obs.WithClock(func() time.Duration {
				tick += time.Microsecond
				return tick
			}))
			// The exact scenario of TestGoldenTraceSchema, plus WithFaults.
			net := shard.NewNetwork(
				shard.WithShards(2),
				shard.WithGasLimits(3, 1000),
				shard.WithMempool(mempool.DefaultConfig()),
				shard.WithRecorder(journal),
				shard.WithFaults(plan),
			)
			alice := chain.AddrFromUint(1)
			bob := chain.AddrFromUint(2)
			net.CreateUser(alice, 1_000_000)
			net.CreateUser(bob, 1_000_000)
			for n := uint64(1); n <= 5; n++ {
				if _, err := net.SubmitTx(payTx(alice, bob, n, 10)); err != nil {
					t.Fatalf("submit nonce %d: %v", n, err)
				}
			}
			if _, err := net.SubmitTx(payTx(alice, bob, 5, 10)); err == nil {
				t.Fatal("duplicate nonce admitted")
			}
			net.Submit(payTx(chain.AddrFromUint(99), bob, 1, 10))
			for e := 0; e < 2; e++ {
				if _, err := net.RunEpoch(); err != nil {
					t.Fatal(err)
				}
			}
			if err := journal.Close(); err != nil {
				t.Fatal(err)
			}
			if got := normalizeTrace(t, buf.Bytes()); got != string(want) {
				t.Errorf("empty plan %q perturbed the golden trace.\nGot:\n%s\nWant:\n%s", name, got, want)
			}
		})
	}
}

func mustParse(t *testing.T, s string) *fault.Plan {
	t.Helper()
	p, err := fault.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCrashedShardRecovers: a crash loses the shard's whole batch —
// no receipts, no state change, a view change charged at the PBFT
// model's rate — and the requeued batch commits in the next epoch
// even without a mempool attached (the legacy pending queue must hold
// it; regression for silently dropping deferred work).
func TestCrashedShardRecovers(t *testing.T) {
	ev := &faultEvents{}
	plan := fault.New().Set(1, 0, fault.Directive{Kind: fault.CrashMidEpoch})
	net := shard.NewNetwork(shard.WithShards(2),
		shard.WithFaults(plan), shard.WithRecorder(ev))
	users := make([]chain.Address, 8)
	for i := range users {
		users[i] = chain.AddrFromUint(uint64(i + 1))
		net.CreateUser(users[i], 1_000_000)
	}

	// One native payment per user, routed to the sender's home shard:
	// both shards get traffic.
	var ids []uint64
	var lostWant int
	for i, u := range users {
		ids = append(ids, net.Submit(payTx(u, users[(i+1)%len(users)], 1, 10)))
		if chain.ShardOf(u, 2) == 0 {
			lostWant++
		}
	}
	if lostWant == 0 || lostWant == len(users) {
		t.Fatalf("test users all map to one shard (lost=%d of %d)", lostWant, len(users))
	}

	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lost != lostWant {
		t.Errorf("epoch 1 Lost = %d, want %d", stats.Lost, lostWant)
	}
	if stats.ViewChanges != 1 {
		t.Errorf("epoch 1 ViewChanges = %d, want 1", stats.ViewChanges)
	}
	if stats.Committed != len(users)-lostWant {
		t.Errorf("epoch 1 committed = %d, want the healthy shard's %d", stats.Committed, len(users)-lostWant)
	}
	if want := []string{fmt.Sprintf("e1/s0/crash/lost=%d", lostWant)}; len(ev.faults) != 1 || ev.faults[0] != want[0] {
		t.Errorf("fault events = %v, want %v", ev.faults, want)
	}
	vcWant := consensus.DefaultModel(net.Config().NodesPerShard).ViewChangeTime()
	if len(ev.viewChanges) != 1 || ev.viewChanges[0] != vcWant {
		t.Errorf("view changes = %v, want one of %v", ev.viewChanges, vcWant)
	}
	if got := net.MempoolSize(); got != lostWant {
		t.Errorf("requeued mempool size = %d, want %d", got, lostWant)
	}
	// The lost transactions have no receipts yet.
	pending := 0
	for _, id := range ids {
		if net.Receipt(id) == nil {
			pending++
		}
	}
	if pending != lostWant {
		t.Errorf("pending receipts = %d, want %d", pending, lostWant)
	}

	// Epoch 2 is healthy: the requeued batch commits and every
	// transaction ends with a successful receipt.
	stats2, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Lost != 0 || stats2.ViewChanges != 0 {
		t.Errorf("epoch 2 unexpectedly faulted: %+v", stats2)
	}
	for _, id := range ids {
		if rec := net.Receipt(id); rec == nil || !rec.Success {
			t.Errorf("tx %d: receipt %+v after recovery", id, rec)
		}
	}
}

// TestRepeatedFaultsEscalateToDS: after FaultEscalation consecutive
// lost blocks the dispatcher reroutes the shard's traffic to DS
// execution; once the shard seals a healthy (empty) block the mask
// clears and placement returns to the shard.
func TestRepeatedFaultsEscalateToDS(t *testing.T) {
	ev := &faultEvents{}
	plan := fault.New().
		Set(1, 0, fault.Directive{Kind: fault.DropMicroBlock}).
		Set(2, 0, fault.Directive{Kind: fault.CorruptDelta})
	net := shard.NewNetwork(shard.WithShards(2),
		shard.WithFaults(plan), shard.WithRecorder(ev), shard.WithFaultEscalation(2))

	var shard0, other chain.Address
	for i := uint64(1); i <= 16; i++ {
		u := chain.AddrFromUint(i)
		net.CreateUser(u, 1_000_000)
		switch {
		case shard0 == (chain.Address{}) && chain.ShardOf(u, 2) == 0:
			shard0 = u
		case other == (chain.Address{}) && chain.ShardOf(u, 2) == 1:
			other = u
		}
	}
	if shard0 == (chain.Address{}) || other == (chain.Address{}) {
		t.Fatal("could not find users on both shards")
	}

	// Epochs 1 and 2 lose shard 0's block each time (nonces 1 and 2
	// requeue and retry).
	nonce := uint64(0)
	submit := func() uint64 {
		nonce++
		return net.Submit(payTx(shard0, other, nonce, 10))
	}
	first := submit()
	for e := 1; e <= 2; e++ {
		stats, err := net.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Lost == 0 {
			t.Fatalf("epoch %d lost nothing", e)
		}
		if stats.Escalated != 0 {
			t.Fatalf("epoch %d escalated before the streak bound: %+v", e, stats)
		}
	}

	// Epoch 3: streak reached the bound, shard 0 is down. The requeued
	// transfer and a fresh one both execute on the DS committee.
	second := submit()
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Escalated == 0 {
		t.Fatalf("epoch 3 rerouted nothing: %+v", stats)
	}
	if len(ev.escalations) == 0 {
		t.Fatal("no shard_escalated event")
	}
	for _, id := range []uint64{first, second} {
		rec := net.Receipt(id)
		if rec == nil || !rec.Success {
			t.Fatalf("tx %d after escalation: %+v", id, rec)
		}
		if rec.Shard != -1 {
			t.Errorf("tx %d executed on shard %d, want the DS committee (-1)", id, rec.Shard)
		}
	}

	// Shard 0 sealed a healthy empty block in epoch 3, so the streak
	// reset: epoch 4 routes its traffic back onto the shard.
	third := submit()
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	rec := net.Receipt(third)
	if rec == nil || !rec.Success {
		t.Fatalf("tx %d after recovery: %+v", third, rec)
	}
	if rec.Shard != 0 {
		t.Errorf("recovered shard placement = %d, want 0", rec.Shard)
	}
}

// TestFaultLiveness is the reconciliation bar: under a hostile seeded
// plan with every fault kind active, every admitted transaction must
// still terminally commit or reject — nothing may be lost in the
// crash/requeue/escalate cycle — and the mempool must drain.
func TestFaultLiveness(t *testing.T) {
	plan := fault.Generate(1234, fault.Spec{
		CrashProb: 0.25, DropProb: 0.1, CorruptProb: 0.1, StraggleProb: 0.2,
	})
	reg := obs.NewRegistry()
	net, contract, users := deployFT(t, 4, 12, true,
		shard.WithFaults(plan), shard.WithRegistry(reg),
		shard.WithMempool(mempool.DefaultConfig()),
		shard.WithFaultEscalation(2))

	var ids []uint64
	epochs := 0
	submit := func(tx *chain.Tx) {
		id, err := net.SubmitTx(tx)
		if err != nil {
			t.Fatalf("submit %+v: %v", tx, err)
		}
		ids = append(ids, id)
	}
	drain := func() {
		for net.MempoolSize() > 0 {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
			if epochs++; epochs > 200 {
				t.Fatalf("mempool never drained under faults (%d pending)", net.MempoolSize())
			}
		}
	}

	// The FT owner fans tokens out to everyone (only users[0] holds the
	// initial supply), then each user circulates them for three rounds —
	// all under the hostile fault schedule.
	ownerNonce := uint64(0)
	for _, u := range users[1:] {
		ownerNonce++
		submit(transferTx(users[0], u, contract, ownerNonce, 100))
	}
	drain()
	for round := uint64(1); round <= 3; round++ {
		for i, u := range users {
			nonce := round
			if i == 0 {
				nonce += ownerNonce
			}
			submit(transferTx(u, users[(i+1)%len(users)], contract, nonce, 1))
		}
		drain()
	}
	snap := reg.Snapshot()
	if snap.Counters["fault.lost_txs"] == 0 {
		t.Fatal("no transactions were lost to faults; the liveness check is vacuous")
	}
	for _, id := range ids {
		rec := net.Receipt(id)
		if rec == nil {
			t.Errorf("tx %d: admitted but never terminally processed", id)
			continue
		}
		if !rec.Success {
			t.Errorf("tx %d: failed: %s", id, rec.Error)
		}
	}
}
