package shard

import "cosplit/internal/obs"

// netMetrics caches the network's always-on instruments so the epoch
// pipeline updates them with plain atomic operations (no registry map
// lookups, no allocations) on the hot path.
type netMetrics struct {
	epochs      *obs.Counter
	committed   *obs.Counter
	failed      *obs.Counter
	rejected    *obs.Counter
	deferred    *obs.Counter
	dsCommitted *obs.Counter
	// mergeContracts counts contracts whose shard deltas were joined;
	// mergeConflicts counts three-way merges aborted by a join conflict.
	mergeContracts *obs.Counter
	mergeConflicts *obs.Counter
	overflowTrips  *obs.Counter

	// Fault injection and recovery: injected directives by kind, lost
	// (requeued) transactions, PBFT view changes charged, shard-epochs
	// spent escalated to DS, and transactions rerouted by the
	// availability mask.
	faultCrashes     *obs.Counter
	faultDrops       *obs.Counter
	faultCorruptions *obs.Counter
	faultStraggles   *obs.Counter
	faultLostTxs     *obs.Counter
	viewChanges      *obs.Counter
	escalations      *obs.Counter
	escalatedTxs     *obs.Counter

	mempool *obs.Gauge

	queueDepth   *obs.Histogram // transactions queued per shard per epoch
	shardGas     *obs.Histogram // gas committed per MicroBlock
	deltaEntries *obs.Histogram // merged state components per epoch

	// Intra-shard parallel execution: conflict groups per batch, largest
	// group size, transactions sharing a group with at least one other
	// (the sequential residue), and batches that fell back to the
	// sequential path (opaque footprint, single group, gas-limit trip).
	groups         *obs.Histogram
	groupSize      *obs.Histogram
	groupResidue   *obs.Histogram
	groupFallbacks *obs.Counter
	foldTime       *obs.Histogram // deterministic group-fold duration

	// Compiled execution: programs compiled at deploy, transitions
	// lowered vs falling back to the interpreter, runtime dispatches by
	// engine (fused fast path / generic compiled / interpreter
	// fallback), and pooled execution machines served by reuse.
	compilePrograms     *obs.Counter
	compileTransitions  *obs.Counter
	compileFallbacks    *obs.Counter
	compileFastRuns     *obs.Counter
	compileGenericRuns  *obs.Counter
	compileFallbackRuns *obs.Counter
	compilePoolRecycles *obs.Counter

	// Authenticated state root: leaves committed in the incremental
	// trie, and the per-epoch cost of sealing the root into a
	// FinalBlock (rehash of the dirtied paths only).
	rootLeaves *obs.Gauge
	rootTime   *obs.Histogram

	dispatchTime  *obs.Histogram
	shardExecTime *obs.Histogram // per shard per epoch
	mergeTime     *obs.Histogram
	dsExecTime    *obs.Histogram
	consensusTime *obs.Histogram
	wallTime      *obs.Histogram // modelled epoch duration
	measuredTime  *obs.Histogram // host wall-clock per epoch
}

func newNetMetrics(reg *obs.Registry) netMetrics {
	return netMetrics{
		epochs:              reg.Counter("net.epochs"),
		committed:           reg.Counter("tx.committed"),
		failed:              reg.Counter("tx.failed"),
		rejected:            reg.Counter("tx.rejected"),
		deferred:            reg.Counter("tx.deferred"),
		dsCommitted:         reg.Counter("tx.ds_committed"),
		mergeContracts:      reg.Counter("merge.contracts"),
		mergeConflicts:      reg.Counter("merge.conflicts"),
		overflowTrips:       reg.Counter("shard.overflow_guard_trips"),
		faultCrashes:        reg.Counter("fault.crashes"),
		faultDrops:          reg.Counter("fault.drops"),
		faultCorruptions:    reg.Counter("fault.corruptions"),
		faultStraggles:      reg.Counter("fault.straggles"),
		faultLostTxs:        reg.Counter("fault.lost_txs"),
		viewChanges:         reg.Counter("fault.view_changes"),
		escalations:         reg.Counter("fault.escalations"),
		escalatedTxs:        reg.Counter("fault.escalated_txs"),
		mempool:             reg.Gauge("net.mempool"),
		queueDepth:          reg.SizeHistogram("shard.queue_depth"),
		shardGas:            reg.SizeHistogram("shard.gas_used"),
		deltaEntries:        reg.SizeHistogram("merge.delta_entries"),
		groups:              reg.SizeHistogram("shard.groups"),
		groupSize:           reg.SizeHistogram("shard.group_size"),
		groupResidue:        reg.SizeHistogram("shard.group_residue"),
		groupFallbacks:      reg.Counter("shard.group_fallbacks"),
		foldTime:            reg.TimeHistogram("shard.fold_time"),
		compilePrograms:     reg.Counter("compile.programs"),
		compileTransitions:  reg.Counter("compile.transitions"),
		compileFallbacks:    reg.Counter("compile.fallbacks"),
		compileFastRuns:     reg.Counter("compile.fast_runs"),
		compileGenericRuns:  reg.Counter("compile.generic_runs"),
		compileFallbackRuns: reg.Counter("compile.fallback_runs"),
		compilePoolRecycles: reg.Counter("compile.pool_recycles"),

		rootLeaves: reg.Gauge("state.root_leaves"),
		rootTime:   reg.TimeHistogram("epoch.root_time"),

		dispatchTime:  reg.TimeHistogram("epoch.dispatch_time"),
		shardExecTime: reg.TimeHistogram("shard.exec_time"),
		mergeTime:     reg.TimeHistogram("epoch.merge_time"),
		dsExecTime:    reg.TimeHistogram("epoch.ds_exec_time"),
		consensusTime: reg.TimeHistogram("epoch.consensus_time"),
		wallTime:      reg.TimeHistogram("epoch.wall_time"),
		measuredTime:  reg.TimeHistogram("epoch.measured_time"),
	}
}
