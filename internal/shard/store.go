package shard

import (
	"fmt"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
	"cosplit/internal/trie"
)

// Checkpoint is the network's durable progress marker: the epoch and
// block number the next FinalBlock will carry, and the next
// transaction id to assign. Persisting NextTxID alongside the epoch is
// what makes restart recovery bit-identical: a driver that resubmits
// its post-crash stream sees the same ids, so receipts and FinalBlocks
// replay byte-for-byte.
type Checkpoint struct {
	Epoch       uint64
	BlockNumber uint64
	NextTxID    uint64
}

// StateStore is the pluggable durability backend (WithStateStore).
// After every committed epoch — FinalizeEpoch on the committee,
// ApplyFinalBlock on a replica — the network hands the store the
// sealed FinalBlock and its post-commit checkpoint. The store is
// expected to journal the block durably before returning; an error
// aborts the pipeline (a network that cannot persist must not keep
// committing).
//
// The interface lives here rather than in the store package so the
// shard layer stays free of on-disk concerns (and because the wire
// codecs the store reuses already import shard).
type StateStore interface {
	EpochCommitted(n *Network, fb *FinalBlock, cp Checkpoint) error
}

// Checkpoint returns the network's current progress marker.
func (n *Network) Checkpoint() Checkpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Checkpoint{Epoch: n.Epoch, BlockNumber: n.BlockNumber, NextTxID: n.nextTxID}
}

// RestoreCheckpoint rewinds or advances the progress marker to a
// recovered checkpoint. Recovery-only: the caller must also have
// restored the matching state.
func (n *Network) RestoreCheckpoint(cp Checkpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Epoch = cp.Epoch
	n.BlockNumber = cp.BlockNumber
	n.nextTxID = cp.NextTxID
}

// AttachStateStore attaches (or detaches, with nil) a durability
// backend after construction. The node layer needs this: cluster
// networks come out of a shared genesis function that cannot carry
// per-role options. Must be called before the network runs epochs.
func (n *Network) AttachStateStore(s StateStore) { n.store = s }

// RestoreContractState replaces a deployed contract's canonical state
// with recovered field values (snapshot restore). The contract must
// already exist — recovery provisions the network through the same
// deterministic genesis as the original run, then overwrites state.
func (n *Network) RestoreContractState(addr chain.Address, fields map[string]value.Value) error {
	c := n.Contracts.Get(addr)
	if c == nil {
		return fmt.Errorf("restore state: %w %s", ErrUnknownContract, addr)
	}
	st := eval.NewMemState(c.Checked.FieldTypes)
	for name, v := range fields {
		if _, ok := c.Checked.FieldTypes[name]; !ok {
			return fmt.Errorf("restore state: contract %s has no field %q", addr, name)
		}
		st.Fields[name] = v
	}
	c.ReplaceState(st)
	return nil
}

// ReplayFinalBlock applies a journaled FinalBlock during recovery:
// identical to ApplyFinalBlock — merge, account delta, receipts, DS
// re-execution, root verification — except the attached StateStore is
// not notified (the block is already on disk; re-appending it would
// duplicate the journal).
func (n *Network) ReplayFinalBlock(fb *FinalBlock) error {
	return n.replayFinalBlock(fb)
}

// RebuildStateRoots reconstructs the incremental root trie from the
// full canonical state. Recovery uses it after a snapshot restore;
// steady-state epochs never need it (the pipeline maintains the trie
// per delta).
func (n *Network) RebuildStateRoots() {
	fresh := &trie.StateRoots{}
	n.buildRoots(fresh)
	n.roots = fresh
}

// RecomputeStateRoot renders the root from scratch, independently of
// the incrementally maintained trie. It is the differential oracle the
// root-equivalence tests compare StateRoot against; production paths
// use StateRoot.
func (n *Network) RecomputeStateRoot() string {
	fresh := &trie.StateRoots{}
	n.buildRoots(fresh)
	return fresh.Root()
}

func (n *Network) buildRoots(r *trie.StateRoots) {
	for _, c := range n.Contracts.All() {
		r.PutContractState(c.Addr, c.Snapshot())
	}
	n.Accounts.Range(func(addr chain.Address, acc *chain.Account) bool {
		r.TouchAccount(addr, acc)
		return true
	})
}

// touchAccount re-commits one account in the root trie from canonical
// state.
func (n *Network) touchAccount(addr chain.Address) {
	n.roots.TouchAccount(addr, n.Accounts.Get(addr))
}

// touchAccountDelta re-commits every account an applied delta touched.
func (n *Network) touchAccountDelta(d *chain.AccountDelta) {
	for addr := range d.BalanceDeltas {
		n.touchAccount(addr)
	}
	for addr := range d.Nonces {
		if _, ok := d.BalanceDeltas[addr]; !ok {
			n.touchAccount(addr)
		}
	}
}

// touchDeltas re-commits the state components a merged delta set wrote,
// reading their post-merge values from the contract's new canonical
// state. Whole-field writes re-render the field subtree; entry writes
// touch single leaves.
func (n *Network) touchDeltas(addr chain.Address, deltas []*chain.StateDelta, st *eval.MemState) {
	for _, d := range deltas {
		for field, fd := range d.Fields {
			if fd.Whole != nil {
				n.roots.TouchWholeField(addr, field, st)
				continue
			}
			for _, e := range fd.Entries {
				n.roots.TouchEntry(addr, field, e.Keys, st)
			}
		}
	}
}

// touchOverlay re-commits the components a DS-executed overlay wrote
// into its working state (which becomes canonical when runDS installs
// it).
func (n *Network) touchOverlay(addr chain.Address, ov *chain.Overlay, st *eval.MemState) {
	_ = ov.Components(func(field, _ string, keys []value.Value) error {
		if len(keys) == 0 {
			n.roots.TouchWholeField(addr, field, st)
		} else {
			n.roots.TouchEntry(addr, field, keys, st)
		}
		return nil
	})
}
