// Package shard implements the sharded transaction-processing pipeline
// of Fig. 10: per-epoch dispatch of the mempool to shards, parallel
// in-shard execution producing MicroBlocks and StateDeltas, the DS
// committee's three-way merge into a FinalBlock, and sequential DS
// execution of the transactions no shard could take.
package shard

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/consensus"
	"cosplit/internal/core/signature"
	"cosplit/internal/dispatch"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// Config parameterises the simulated network.
type Config struct {
	NumShards     int
	NodesPerShard int
	// ShardGasLimit caps the gas a shard commits per epoch; DSGasLimit
	// caps the DS committee. These mirror Zilliqa's per-MicroBlock and
	// per-FinalBlock gas limits.
	ShardGasLimit uint64
	DSGasLimit    uint64
	// SplitGasAccounting enables the Sec. 4.2.2 per-shard gas budgets.
	SplitGasAccounting bool
	// ModelConsensus adds the PBFT timing model to epoch wall time.
	ModelConsensus bool
	// ParallelShards executes shard queues on a worker pool bounded by
	// GOMAXPROCS, and dispatches the mempool packet concurrently. The
	// results are bit-identical to the sequential mode: MicroBlocks
	// land in a slice indexed by shard, dispatch placement is committed
	// in submission order, and the DS merge folds deltas in shard order
	// over contracts sorted by address, so no outcome depends on
	// goroutine completion order. The default (false) executes shard
	// queues back-to-back; either way the modelled epoch time charges
	// the maximum per-shard execution time (shards are distinct
	// machines in the real network) and EpochStats reports the host
	// wall-clock alongside it.
	ParallelShards bool
	// OverflowGuard enables the Sec. 6 conservative integer-overflow
	// check: a shard rejects a transaction whose cumulative IntMerge
	// delta on any component exceeds ⌊(MAX_INT − v₀)/N⌋ (or the
	// symmetric bound below zero), guaranteeing the joined deltas of N
	// shards cannot overflow at merge time.
	OverflowGuard bool
}

// DefaultConfig mirrors the paper's experimental setup: 5 nodes per
// shard, mainnet-like gas limits.
func DefaultConfig(numShards int) Config {
	return Config{
		NumShards:          numShards,
		NodesPerShard:      5,
		ShardGasLimit:      2_000_000,
		DSGasLimit:         2_000_000,
		SplitGasAccounting: true,
		ModelConsensus:     true,
	}
}

// MicroBlock is a shard's per-epoch output (MB + SD in Fig. 10).
type MicroBlock struct {
	Shard    int
	Epoch    uint64
	Receipts []*chain.Receipt
	Deltas   []*chain.StateDelta
	Accounts *chain.AccountDelta
	GasUsed  uint64
	// Deferred are transactions that did not fit in the gas limit.
	Deferred []*chain.Tx
	ExecTime time.Duration
}

// EpochStats reports what happened in one epoch.
type EpochStats struct {
	Epoch     uint64
	Committed int
	Failed    int
	Rejected  int
	Deferred  int
	// PerShard counts committed transactions per shard; DSCount counts
	// the DS committee's.
	PerShard []int
	DSCount  int
	// Timings. WallTime is the modelled epoch duration (the network's
	// shards execute on distinct machines, so it charges the maximum
	// per-shard execution time); MeasuredTime is the host wall-clock
	// the simulator actually spent, reported side by side so benchmark
	// harnesses can compare the modelled pipeline against real
	// single-machine behaviour.
	DispatchTime  time.Duration
	ShardExecTime time.Duration // max over shards (they run in parallel)
	// SumShardExecTime totals every shard's execution time: the cost of
	// the same epoch on a non-pipelined (sequential) executor.
	SumShardExecTime time.Duration
	MergeTime        time.Duration
	DSExecTime       time.Duration
	ConsensusTime    time.Duration
	WallTime         time.Duration
	MeasuredTime     time.Duration
	// DeltaEntries is the total number of merged state components.
	DeltaEntries int
}

// Network is the simulated sharded blockchain.
type Network struct {
	Cfg       Config
	Accounts  *chain.Accounts
	Contracts *chain.Contracts
	Disp      *dispatch.Dispatcher

	Epoch       uint64
	BlockNumber uint64

	mempool  []*chain.Tx
	receipts map[uint64]*chain.Receipt
	nextTxID uint64
	mu       sync.Mutex

	// Per-epoch scratch buffers, reused across epochs so steady-state
	// epochs allocate no queue backing arrays. Safe to reuse because
	// deferred transactions are copied out of the queues (append to a
	// nil slice) before the next epoch truncates them.
	queueBuf    [][]*chain.Tx
	dsQueueBuf  []*chain.Tx
	perShardBuf []int

	shardModel consensus.PBFTModel
	dsModel    consensus.PBFTModel
}

// NewNetwork builds a network with the given configuration.
func NewNetwork(cfg Config) *Network {
	accounts := chain.NewAccounts()
	contracts := chain.NewContracts()
	d := dispatch.New(cfg.NumShards, accounts, contracts)
	d.SplitGasAccounting = cfg.SplitGasAccounting
	return &Network{
		Cfg:        cfg,
		Accounts:   accounts,
		Contracts:  contracts,
		Disp:       d,
		receipts:   make(map[uint64]*chain.Receipt),
		shardModel: consensus.DefaultModel(cfg.NodesPerShard),
		dsModel:    consensus.DefaultModel(cfg.NodesPerShard * 2),
		nextTxID:   1,
		Epoch:      1,
	}
}

// CreateUser registers a user account with an initial balance.
func (n *Network) CreateUser(addr chain.Address, balance uint64) {
	n.Accounts.Create(addr, balance, false)
}

// DeployContract deploys a contract immediately (deployments are
// DS-committee work; the simulator applies them synchronously).
func (n *Network) DeployContract(deployer chain.Address, source string,
	params map[string]value.Value, query *signature.Query) (chain.Address, error) {
	acc := n.Accounts.Get(deployer)
	if acc == nil {
		return chain.Address{}, fmt.Errorf("unknown deployer %s", deployer)
	}
	addr := chain.ContractAddress(deployer, acc.Nonce+1)
	dep := &chain.Deployment{Source: source, Params: params, Query: query}
	c, err := chain.Deploy(addr, source, params, dep)
	if err != nil {
		return chain.Address{}, err
	}
	n.Accounts.Create(addr, 0, true)
	n.Contracts.Add(c)
	// Bump the deployer's nonce.
	d := chain.NewAccountDelta()
	d.BumpNonce(deployer, acc.Nonce+1)
	if err := n.Accounts.Apply(d); err != nil {
		return chain.Address{}, err
	}
	return addr, nil
}

// Submit queues a transaction, assigning it an id.
func (n *Network) Submit(tx *chain.Tx) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	tx.ID = n.nextTxID
	n.nextTxID++
	n.mempool = append(n.mempool, tx)
	return tx.ID
}

// Receipt returns the receipt for a transaction id, if processed.
func (n *Network) Receipt(id uint64) *chain.Receipt {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.receipts[id]
}

// MempoolSize returns the number of pending transactions.
func (n *Network) MempoolSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.mempool)
}

// epochQueues returns the per-shard and DS queue buffers, truncated
// for a fresh epoch but keeping their backing arrays.
func (n *Network) epochQueues() ([][]*chain.Tx, []*chain.Tx) {
	if len(n.queueBuf) != n.Cfg.NumShards {
		n.queueBuf = make([][]*chain.Tx, n.Cfg.NumShards)
	}
	for s := range n.queueBuf {
		n.queueBuf[s] = n.queueBuf[s][:0]
	}
	return n.queueBuf, n.dsQueueBuf[:0]
}

// RunEpoch processes the current mempool through one full epoch and
// returns its statistics.
func (n *Network) RunEpoch() (*EpochStats, error) {
	n.mu.Lock()
	pending := n.mempool
	n.mempool = nil
	n.mu.Unlock()

	epochStart := time.Now()
	stats := &EpochStats{Epoch: n.Epoch, PerShard: make([]int, n.Cfg.NumShards)}
	n.Disp.ResetEpoch()

	// Worker budget for the parallel pipeline: bounded by the host's
	// GOMAXPROCS so the pool never oversubscribes the machine.
	workers := 1
	if n.Cfg.ParallelShards {
		workers = runtime.GOMAXPROCS(0)
	}

	// Phase 1: lookup nodes dispatch the packet (Sec. 4.3). Constraint
	// evaluation fans out over the worker pool; placement is committed
	// in submission order, so the routing is deterministic.
	t0 := time.Now()
	decisions := n.Disp.DispatchAll(pending, workers)
	queues, dsQueue := n.epochQueues()
	for i, tx := range pending {
		dec := decisions[i]
		if dec.Rejected {
			stats.Rejected++
			n.record(&chain.Receipt{TxID: tx.ID, Success: false, Error: dec.Reason, Shard: -2, Epoch: n.Epoch})
			continue
		}
		if dec.Shard == dispatch.DS {
			dsQueue = append(dsQueue, tx)
		} else {
			queues[dec.Shard] = append(queues[dec.Shard], tx)
		}
	}
	n.dsQueueBuf = dsQueue
	stats.DispatchTime = time.Since(t0)

	// Phase 2: shards execute their queues — concurrently on a worker
	// pool bounded by GOMAXPROCS when ParallelShards is set, else
	// back-to-back. MicroBlocks land in a slice indexed by shard, so
	// the downstream merge sees the same input either way; the modelled
	// epoch time charges the maximum per-shard execution time (shards
	// are distinct machines in the real network).
	blocks := make([]*MicroBlock, n.Cfg.NumShards)
	errs := make([]error, n.Cfg.NumShards)
	if workers > 1 && n.Cfg.NumShards > 1 {
		poolWorkers := workers
		if poolWorkers > n.Cfg.NumShards {
			poolWorkers = n.Cfg.NumShards
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < poolWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= n.Cfg.NumShards {
						return
					}
					blocks[s], errs[s] = n.runShard(s, queues[s])
				}
			}()
		}
		wg.Wait()
	} else {
		for s := 0; s < n.Cfg.NumShards; s++ {
			blocks[s], errs[s] = n.runShard(s, queues[s])
		}
	}
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}

	var allDeltas []*chain.StateDelta
	accDelta := chain.NewAccountDelta()
	if cap(n.perShardBuf) < n.Cfg.NumShards {
		n.perShardBuf = make([]int, n.Cfg.NumShards)
	}
	perShardCounts := n.perShardBuf[:n.Cfg.NumShards]
	for s, mb := range blocks {
		if mb.ExecTime > stats.ShardExecTime {
			stats.ShardExecTime = mb.ExecTime
		}
		stats.SumShardExecTime += mb.ExecTime
		for _, r := range mb.Receipts {
			n.record(r)
			if r.Success {
				stats.Committed++
				stats.PerShard[s]++
			} else {
				stats.Failed++
			}
		}
		perShardCounts[s] = len(mb.Receipts)
		allDeltas = append(allDeltas, mb.Deltas...)
		accDelta.Merge(mb.Accounts)
		stats.Deferred += len(mb.Deferred)
		n.requeue(mb.Deferred)
	}

	// Phase 3: the DS committee merges all StateDeltas (three-way
	// merge, Sec. 4.3) and applies the account delta. Deltas were
	// collected in shard order and contracts are visited in address
	// order, so the merge is byte-for-byte deterministic regardless of
	// how phase 2 was scheduled.
	t1 := time.Now()
	byContract := make(map[chain.Address][]*chain.StateDelta)
	for _, d := range allDeltas {
		stats.DeltaEntries += d.Size()
		byContract[d.Contract] = append(byContract[d.Contract], d)
	}
	addrs := make([]chain.Address, 0, len(byContract))
	for addr := range byContract {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	for _, addr := range addrs {
		c := n.Contracts.Get(addr)
		merged := c.Snapshot().Copy()
		if err := chain.MergeDeltas(merged, byContract[addr]); err != nil {
			return nil, fmt.Errorf("epoch %d: %w", n.Epoch, err)
		}
		c.ReplaceState(merged)
	}
	if err := n.Accounts.Apply(accDelta); err != nil {
		return nil, err
	}
	stats.MergeTime = time.Since(t1)

	// Phase 4: the DS committee executes the remaining potentially
	// conflicting transactions sequentially on the merged state.
	t2 := time.Now()
	dsCommitted, dsFailed, dsDeferred, err := n.runDS(dsQueue)
	if err != nil {
		return nil, err
	}
	stats.DSExecTime = time.Since(t2)
	stats.Committed += dsCommitted
	stats.DSCount = dsCommitted
	stats.Failed += dsFailed
	stats.Deferred += len(dsDeferred)
	n.requeue(dsDeferred)

	// Phase 5: modelled consensus cost.
	if n.Cfg.ModelConsensus {
		stats.ConsensusTime = consensus.EpochConsensus(
			n.shardModel, n.dsModel, perShardCounts, len(dsQueue))
	}
	stats.WallTime = stats.DispatchTime + stats.ShardExecTime +
		stats.MergeTime + stats.DSExecTime + stats.ConsensusTime
	stats.MeasuredTime = time.Since(epochStart)

	n.Epoch++
	n.BlockNumber++
	return stats, nil
}

// SequentialPipelineTime is the modelled duration of the same epoch on
// a non-pipelined executor: shard queues charged back-to-back instead
// of in parallel. Benchmarks report it next to WallTime to quantify
// what the parallel epoch pipeline buys.
func (s *EpochStats) SequentialPipelineTime() time.Duration {
	return s.DispatchTime + s.SumShardExecTime +
		s.MergeTime + s.DSExecTime + s.ConsensusTime
}

// StateRoot hashes the full observable network state: every contract's
// canonical state (in address order) and every account's balance and
// nonce (in address order). Two runs of the same workload must agree on
// it regardless of execution mode — the determinism tests assert this
// across sequential and parallel epochs.
func (n *Network) StateRoot() string {
	h := sha256.New()
	cs := n.Contracts.All()
	sort.Slice(cs, func(i, j int) bool {
		return bytes.Compare(cs[i].Addr[:], cs[j].Addr[:]) < 0
	})
	for _, c := range cs {
		h.Write(c.Addr[:])
		h.Write([]byte(chain.StateRoot(c.Snapshot())))
	}
	for _, addr := range n.Accounts.Addresses() {
		acc := n.Accounts.Get(addr)
		h.Write(addr[:])
		fmt.Fprintf(h, "%s:%d", acc.Balance, acc.Nonce)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (n *Network) record(r *chain.Receipt) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.receipts[r.TxID] = r
}

func (n *Network) requeue(txs []*chain.Tx) {
	if len(txs) == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mempool = append(n.mempool, txs...)
}

// shardRun is the per-shard execution context for one epoch.
type shardRun struct {
	net      *Network
	shard    int
	overlays map[chain.Address]*chain.Overlay
	accDelta *chain.AccountDelta
	// localBal tracks each account's balance view inside the shard
	// (base balance + local deltas) for overdraft checks.
	localBal map[chain.Address]*big.Int
	// gasSpent tracks per-sender gas spending for split gas accounting.
	gasSpent map[chain.Address]*big.Int
}

func (n *Network) newShardRun(s int) *shardRun {
	return &shardRun{
		net:      n,
		shard:    s,
		overlays: make(map[chain.Address]*chain.Overlay),
		accDelta: chain.NewAccountDelta(),
		localBal: make(map[chain.Address]*big.Int),
		gasSpent: make(map[chain.Address]*big.Int),
	}
}

func (r *shardRun) overlayFor(c *chain.Contract) *chain.Overlay {
	ov, ok := r.overlays[c.Addr]
	if !ok {
		ov = chain.NewOverlay(c.Snapshot(), c.Checked.FieldTypes)
		r.overlays[c.Addr] = ov
	}
	return ov
}

// balanceView returns the shard-local view of an account balance.
func (r *shardRun) balanceView(a chain.Address) *big.Int {
	if b, ok := r.localBal[a]; ok {
		return b
	}
	acc := r.net.Accounts.Get(a)
	b := new(big.Int)
	if acc != nil {
		b.Set(acc.Balance)
	}
	r.localBal[a] = b
	return b
}

func (r *shardRun) credit(a chain.Address, v *big.Int) {
	r.balanceView(a).Add(r.balanceView(a), v)
	r.accDelta.AddBalance(a, v)
}

func (r *shardRun) debit(a chain.Address, v *big.Int) {
	neg := new(big.Int).Neg(v)
	r.credit(a, neg)
}

// gasAllowance returns how much native token the sender may spend on
// gas within this shard (Sec. 4.2.2).
func (r *shardRun) gasAllowance(sender chain.Address) *big.Int {
	acc := r.net.Accounts.Get(sender)
	if acc == nil {
		return new(big.Int)
	}
	if !r.net.Cfg.SplitGasAccounting || r.net.Cfg.NumShards <= 1 {
		return new(big.Int).Set(acc.Balance)
	}
	// Half the balance to the sender's home shard, the rest split
	// across the other shards.
	half := new(big.Int).Rsh(acc.Balance, 1)
	if chain.ShardOf(sender, r.net.Cfg.NumShards) == r.shard {
		return half
	}
	return half.Div(half, big.NewInt(int64(r.net.Cfg.NumShards-1)))
}

// runShard executes a shard's transaction queue sequentially, within
// the shard gas limit, and produces its MicroBlock.
func (n *Network) runShard(s int, queue []*chain.Tx) (*MicroBlock, error) {
	run := n.newShardRun(s)
	mb := &MicroBlock{Shard: s, Epoch: n.Epoch, Accounts: run.accDelta}
	start := time.Now()
	for i, tx := range queue {
		if mb.GasUsed >= n.Cfg.ShardGasLimit {
			mb.Deferred = append(mb.Deferred, queue[i:]...)
			break
		}
		rec := run.execute(tx)
		rec.Shard = s
		rec.Epoch = n.Epoch
		mb.Receipts = append(mb.Receipts, rec)
		mb.GasUsed += rec.GasUsed
	}
	mb.ExecTime = time.Since(start)

	// Extract per-contract state deltas.
	for addr, ov := range run.overlays {
		if !ov.Touched() {
			continue
		}
		c := n.Contracts.Get(addr)
		joins := map[string]signature.Join{}
		if c.Sig != nil {
			joins = c.Sig.Joins
		}
		d, err := ov.ExtractDelta(addr, s, joins)
		if err != nil {
			return nil, err
		}
		mb.Deltas = append(mb.Deltas, d)
	}
	return mb, nil
}

// execute runs one transaction inside a shard.
func (r *shardRun) execute(tx *chain.Tx) *chain.Receipt {
	rec := &chain.Receipt{TxID: tx.ID}
	gasCost := func(used uint64) *big.Int {
		return new(big.Int).Mul(new(big.Int).SetUint64(used), new(big.Int).SetUint64(tx.GasPrice))
	}

	// Split gas accounting: refuse when the sender's shard budget is
	// exhausted.
	spent := r.gasSpent[tx.From]
	if spent == nil {
		spent = new(big.Int)
		r.gasSpent[tx.From] = spent
	}
	budget := tx.GasBudget()
	if new(big.Int).Add(spent, budget).Cmp(r.gasAllowance(tx.From)) > 0 {
		rec.Error = "per-shard gas allowance exceeded"
		return rec
	}

	switch tx.Kind {
	case chain.TxTransfer:
		total := new(big.Int).Add(tx.Amount, budget)
		if r.balanceView(tx.From).Cmp(total) < 0 {
			rec.Error = "insufficient balance"
			return rec
		}
		r.debit(tx.From, tx.Amount)
		r.credit(tx.To, tx.Amount)
		rec.GasUsed = 1
		r.debit(tx.From, gasCost(rec.GasUsed))
		spent.Add(spent, gasCost(rec.GasUsed))
		r.accDelta.BumpNonce(tx.From, tx.Nonce)
		rec.Success = true
		return rec
	case chain.TxCall:
		c := r.net.Contracts.Get(tx.To)
		if c == nil {
			rec.Error = "unknown contract"
			return rec
		}
		shardOv := r.overlayFor(c)
		txOv := chain.NewOverlay(shardOv, c.Checked.FieldTypes)
		ctx := &eval.Context{
			Sender:          tx.From.Value(),
			Origin:          tx.From.Value(),
			Amount:          value.Int{Ty: ast.TyUint128, V: tx.Amount},
			BlockNumber:     new(big.Int).SetUint64(r.net.BlockNumber),
			State:           txOv,
			GasLimit:        tx.GasLimit,
			ContractBalance: new(big.Int).Set(r.balanceView(tx.To)),
		}
		res, err := c.Interp.Run(ctx, tx.Transition, tx.Args)
		rec.GasUsed = ctx.GasUsed
		cost := gasCost(rec.GasUsed)
		// Gas is charged whether or not the transition succeeds.
		r.debit(tx.From, cost)
		spent.Add(spent, cost)
		r.accDelta.BumpNonce(tx.From, tx.Nonce)
		if err != nil {
			rec.Error = err.Error()
			return rec
		}
		// Native token movement: accept pulls the amount into the
		// contract; outgoing messages push funds to user recipients.
		if res.Accepted && tx.Amount.Sign() > 0 {
			if r.balanceView(tx.From).Cmp(tx.Amount) < 0 {
				rec.Error = "insufficient balance for accepted amount"
				return rec
			}
			r.debit(tx.From, tx.Amount)
			r.credit(tx.To, tx.Amount)
		}
		for _, m := range res.Messages {
			if err := r.deliverToUser(c.Addr, m); err != nil {
				rec.Error = err.Error()
				return rec
			}
		}
		if bad, err := r.overflowGuardViolation(c, shardOv, txOv); err != nil {
			rec.Error = err.Error()
			return rec
		} else if bad {
			// Sec. 6: conservative per-shard overflow bound exceeded;
			// the transaction is rejected in-shard (a production system
			// would reroute it to the DS committee).
			rec.Error = "conservative overflow guard tripped"
			return rec
		}
		txOv.CommitTo(shardOv)
		rec.Success = true
		rec.Events = res.Events
		return rec
	default:
		rec.Error = "unsupported transaction kind in shard"
		return rec
	}
}

// deliverToUser applies a contract-emitted message to a user account
// (shards may only send to users; contract recipients are filtered at
// dispatch).
func (r *shardRun) deliverToUser(from chain.Address, m value.Msg) error {
	rcp, ok := m.Entries["_recipient"]
	if !ok {
		return fmt.Errorf("message without _recipient")
	}
	addr, ok := chain.AddressFromValue(rcp)
	if !ok {
		return fmt.Errorf("malformed _recipient")
	}
	if r.net.Accounts.IsContract(addr) {
		return fmt.Errorf("in-shard message to a contract %s", addr)
	}
	if amt, ok := m.Entries["_amount"]; ok {
		iv, ok := amt.(value.Int)
		if !ok {
			return fmt.Errorf("malformed _amount")
		}
		if iv.V.Sign() > 0 {
			if r.balanceView(from).Cmp(iv.V) < 0 {
				return fmt.Errorf("contract balance insufficient for send")
			}
			r.debit(from, iv.V)
			r.credit(addr, iv.V)
		}
	}
	return nil
}

// overflowGuardViolation implements the Sec. 6 conservative check: for
// every IntMerge component the transaction (overlay txOv) changed,
// the shard's cumulative delta relative to the epoch-start value v0
// must stay within ⌊(MAX − v0)/N⌋ above and ⌊(v0 − MIN)/N⌋ below, so
// that N shards' deltas can never jointly overflow.
func (r *shardRun) overflowGuardViolation(c *chain.Contract, shardOv, txOv *chain.Overlay) (bool, error) {
	if !r.net.Cfg.OverflowGuard || c.Sig == nil {
		return false, nil
	}
	n := int64(r.net.Cfg.NumShards)
	if n <= 1 {
		return false, nil
	}
	d, err := txOv.ExtractDelta(c.Addr, r.shard, c.Sig.Joins)
	if err != nil {
		return false, err
	}
	base := c.Snapshot()
	for f, fd := range d.Fields {
		if c.Sig.Joins[f] != signature.IntMerge {
			continue
		}
		check := func(keys []value.Value) (bool, error) {
			// Cumulative shard value after this tx vs epoch start.
			var cur, v0 value.Value
			var ok bool
			if keys == nil {
				cur, err = txOv.LoadField(f)
				if err != nil {
					return false, err
				}
				v0, err = base.LoadField(f)
				if err != nil {
					return false, err
				}
			} else {
				cur, ok, err = txOv.MapGet(f, keys)
				if err != nil || !ok {
					return false, err
				}
				v0, ok, err = base.MapGet(f, keys)
				if err != nil {
					return false, err
				}
				if !ok {
					v0 = nil
				}
			}
			ci, ok := cur.(value.Int)
			if !ok {
				return false, nil
			}
			zero := big.NewInt(0)
			base0 := zero
			if v0 != nil {
				if vi, ok := v0.(value.Int); ok {
					base0 = vi.V
				}
			}
			delta := new(big.Int).Sub(ci.V, base0)
			if delta.Sign() >= 0 {
				headroom := new(big.Int).Sub(ast.MaxInt(ci.Ty), base0)
				headroom.Div(headroom, big.NewInt(n))
				return delta.Cmp(headroom) > 0, nil
			}
			footroom := new(big.Int).Sub(base0, ast.MinInt(ci.Ty))
			footroom.Div(footroom, big.NewInt(n))
			neg := new(big.Int).Neg(delta)
			return neg.Cmp(footroom) > 0, nil
		}
		if fd.Whole != nil {
			bad, err := check(nil)
			if err != nil || bad {
				return bad, err
			}
		}
		for _, e := range fd.Entries {
			if e.Kind != chain.IntAdd {
				continue
			}
			bad, err := check(e.Keys)
			if err != nil || bad {
				return bad, err
			}
		}
	}
	return false, nil
}
