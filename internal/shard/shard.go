// Package shard implements the sharded transaction-processing pipeline
// of Fig. 10: per-epoch dispatch of the mempool to shards, parallel
// in-shard execution producing MicroBlocks and StateDeltas, the DS
// committee's three-way merge into a FinalBlock, and sequential DS
// execution of the transactions no shard could take.
//
// Networks are built with NewNetwork and functional options. The
// pipeline is instrumented throughout: always-on counters and
// histograms accumulate in an obs.Registry (surfaced by Snapshot),
// and an optional obs.Recorder attached via WithRecorder receives a
// structured event stream — dispatch placements, per-shard execution
// spans, sealed MicroBlocks, delta merges, requeues and epoch
// summaries. With no recorder attached the default obs.Nop keeps the
// hot path allocation-free.
package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/consensus"
	"cosplit/internal/core/signature"
	"cosplit/internal/dispatch"
	"cosplit/internal/fault"
	"cosplit/internal/mempool"
	"cosplit/internal/obs"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
	"cosplit/internal/trie"
)

// MicroBlock is a shard's per-epoch output (MB + SD in Fig. 10).
type MicroBlock struct {
	Shard    int
	Epoch    uint64
	Receipts []*chain.Receipt
	Deltas   []*chain.StateDelta
	Accounts *chain.AccountDelta
	GasUsed  uint64
	// Deferred are transactions that did not fit in the gas limit.
	Deferred []*chain.Tx
	ExecTime time.Duration
}

// EpochStats reports what happened in one epoch.
//
// Per-stage timings (dispatch, per-shard execution, merge, DS
// execution, consensus) are no longer duplicated here: attach an
// obs.StageCollector via WithRecorder and read its EpochSummary, which
// carries the full breakdown the EpochFinalized event is built from.
type EpochStats struct {
	Epoch     uint64
	Committed int
	Failed    int
	Rejected  int
	Deferred  int
	// PerShard counts committed transactions per shard; DSCount counts
	// the DS committee's.
	PerShard []int
	DSCount  int
	// DeltaEntries is the total number of merged state components.
	DeltaEntries int
	// WallTime is the modelled epoch duration (the network's shards
	// execute on distinct machines, so it charges the maximum per-shard
	// execution time); MeasuredTime is the host wall-clock the
	// simulator actually spent, reported side by side so benchmark
	// harnesses can compare the modelled pipeline against real
	// single-machine behaviour.
	WallTime     time.Duration
	MeasuredTime time.Duration

	// Fault injection and recovery (all zero without WithFaults):
	// Lost counts transactions requeued because their shard's
	// MicroBlock was lost to an injected fault, ViewChanges the shard
	// committees charged a PBFT view change, and Escalated the
	// transactions the availability mask rerouted to DS execution.
	Lost        int
	ViewChanges int
	Escalated   int
}

// Network is the simulated sharded blockchain.
type Network struct {
	Accounts  *chain.Accounts
	Contracts *chain.Contracts
	Disp      *dispatch.Dispatcher

	Epoch       uint64
	BlockNumber uint64

	cfg Config
	rec obs.Recorder
	reg *obs.Registry
	m   netMetrics

	// pool is the admission-controlled mempool (WithMempool); nil
	// networks run the legacy unconditional Submit queue only.
	pool *mempool.Pool

	// faults is the injection plan (WithFaults; nil or empty injects
	// nothing). faultStreak counts consecutive epochs each shard lost
	// its MicroBlock; downBuf is the availability mask handed to the
	// dispatcher when a streak reaches Config.FaultEscalation.
	faults      *fault.Plan
	faultStreak []int
	downBuf     []bool

	mempool  []*chain.Tx
	receipts map[uint64]*chain.Receipt
	nextTxID uint64
	mu       sync.Mutex

	// Per-epoch scratch buffers, reused across epochs so steady-state
	// epochs allocate no queue backing arrays. Safe to reuse because
	// deferred transactions are copied out of the queues (append to a
	// nil slice) before the next epoch truncates them.
	queueBuf    [][]*chain.Tx
	dsQueueBuf  []*chain.Tx
	perShardBuf []int
	// ovPool recycles each shard's per-contract overlays across epochs
	// (indexed by shard, so concurrent shard runners never share an
	// entry). Reset keeps the write-table buckets, so steady-state
	// epochs stop paying map growth for the shard-level overlays. Only
	// the one-run-per-shard paths use it; the grouped intra-shard path
	// creates one run per worker and allocates fresh overlays.
	ovPool []map[chain.Address]*chain.Overlay

	shardModel consensus.PBFTModel
	dsModel    consensus.PBFTModel

	// roots is the incrementally maintained authenticated state root:
	// every canonical-state mutation (account create/apply, contract
	// deploy, delta merge, DS execution) re-commits exactly the touched
	// components, so StateRoot never re-renders the full state.
	roots *trie.StateRoots
	// store is the durability backend (WithStateStore/AttachStateStore;
	// nil keeps the network memory-only). When attached, every epoch
	// collects a FinalBlock and hands it to the store after commit.
	store StateStore
}

// NewNetwork builds a network. With no options it reproduces the
// paper's experimental setup on a single shard (see Option); compose
// WithShards, WithGasLimits, WithParallelism, WithRecorder, ... to
// deviate from it.
func NewNetwork(opts ...Option) *Network {
	s := settings{cfg: DefaultConfig(1)}
	for _, opt := range opts {
		opt(&s)
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	accounts := chain.NewAccounts()
	if s.accounts != nil {
		accounts = chain.NewAccountsOn(s.accounts)
	}
	contracts := chain.NewContracts()
	if s.contPager != nil {
		contracts.AttachPager(s.contPager)
	}
	d := dispatch.New(s.cfg.NumShards, accounts, contracts,
		dispatch.WithMetrics(s.reg))
	rec := obs.Multi(s.recs...)
	var pool *mempool.Pool
	if s.poolCfg != nil {
		pool = mempool.New(*s.poolCfg, accounts,
			mempool.WithRecorder(rec), mempool.WithRegistry(s.reg))
	}
	ovPool := make([]map[chain.Address]*chain.Overlay, s.cfg.NumShards)
	for i := range ovPool {
		ovPool[i] = make(map[chain.Address]*chain.Overlay)
	}
	return &Network{
		Accounts:   accounts,
		Contracts:  contracts,
		Disp:       d,
		pool:       pool,
		faults:     s.faults,
		cfg:        s.cfg,
		rec:        rec,
		reg:        s.reg,
		m:          newNetMetrics(s.reg),
		receipts:   make(map[uint64]*chain.Receipt),
		ovPool:     ovPool,
		shardModel: consensus.DefaultModel(s.cfg.NodesPerShard),
		dsModel:    consensus.DefaultModel(s.cfg.NodesPerShard * 2),
		nextTxID:   1,
		Epoch:      1,
		roots:      &trie.StateRoots{},
		store:      s.store,
	}
}

// Config returns the network's resolved configuration.
func (n *Network) Config() Config { return n.cfg }

// Snapshot returns an immutable view of the network's always-on
// metrics (counters, gauges, histograms), including the dispatcher's.
func (n *Network) Snapshot() obs.Snapshot { return n.reg.Snapshot() }

// CreateUser registers a user account with an initial balance.
func (n *Network) CreateUser(addr chain.Address, balance uint64) {
	n.Accounts.Create(addr, balance, false)
	n.touchAccount(addr)
}

// DeployContract deploys a contract immediately (deployments are
// DS-committee work; the simulator applies them synchronously).
func (n *Network) DeployContract(deployer chain.Address, source string,
	params map[string]value.Value, query *signature.Query) (chain.Address, error) {
	acc := n.Accounts.Get(deployer)
	if acc == nil {
		return chain.Address{}, fmt.Errorf("%w %s", ErrUnknownDeployer, deployer)
	}
	addr := chain.ContractAddress(deployer, acc.Nonce+1)
	dep := &chain.Deployment{Source: source, Params: params, Query: query}
	c, err := chain.Deploy(addr, source, params, dep)
	if err != nil {
		return chain.Address{}, err
	}
	n.Accounts.Create(addr, 0, true)
	n.Contracts.Add(c)
	n.touchAccount(addr)
	n.roots.PutContractState(addr, c.Snapshot())
	if c.Compiled != nil {
		compiled, fallbacks, _ := c.Compiled.CompileCounts()
		n.m.compilePrograms.Inc()
		n.m.compileTransitions.Add(int64(compiled))
		n.m.compileFallbacks.Add(int64(fallbacks))
		for i := range c.Checked.Module.Contract.Transitions {
			trName := c.Checked.Module.Contract.Transitions[i].Name
			ok, fast := c.Compiled.CompiledTransition(trName)
			n.rec.TransitionCompiled(n.Epoch, c.Checked.Module.Contract.Name, trName, ok, fast)
		}
	}
	// Bump the deployer's nonce.
	d := chain.NewAccountDelta()
	d.BumpNonce(deployer, acc.Nonce+1)
	if err := n.Accounts.Apply(d); err != nil {
		return chain.Address{}, err
	}
	n.touchAccount(deployer)
	return addr, nil
}

// Submit queues a transaction unconditionally, assigning it an id. It
// bypasses any attached mempool's admission control — use SubmitTx for
// the admission-checked path.
func (n *Network) Submit(tx *chain.Tx) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	tx.ID = n.nextTxID
	n.nextTxID++
	n.mempool = append(n.mempool, tx)
	n.m.mempool.Set(int64(len(n.mempool)))
	return tx.ID
}

// SubmitTx submits a transaction through the admission-controlled
// mempool (WithMempool): the pool may park it behind a nonce gap,
// replace a cheaper same-nonce predecessor, or reject it with a typed
// error (mempool.ErrPoolFull, mempool.ErrUnderpriced,
// mempool.ErrNonceGap, or a wrapped dispatch nonce sentinel — test
// with errors.Is). Without an attached pool it degrades to Submit.
// The returned id is 0 when the transaction was rejected.
func (n *Network) SubmitTx(tx *chain.Tx) (uint64, error) {
	if n.pool == nil {
		return n.Submit(tx), nil
	}
	n.mu.Lock()
	tx.ID = n.nextTxID
	n.nextTxID++
	n.mu.Unlock()
	if err := n.pool.Add(tx); err != nil {
		return 0, err
	}
	return tx.ID, nil
}

// Pool returns the attached mempool, or nil without WithMempool.
func (n *Network) Pool() *mempool.Pool { return n.pool }

// Receipt returns the receipt for a transaction id, if processed.
func (n *Network) Receipt(id uint64) *chain.Receipt {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.receipts[id]
}

// MempoolSize returns the number of pending transactions across the
// legacy Submit queue and the admission-controlled pool.
func (n *Network) MempoolSize() int {
	n.mu.Lock()
	size := len(n.mempool)
	n.mu.Unlock()
	if n.pool != nil {
		size += n.pool.Len()
	}
	return size
}

// epochQueues returns the per-shard and DS queue buffers, truncated
// for a fresh epoch but keeping their backing arrays.
func (n *Network) epochQueues() ([][]*chain.Tx, []*chain.Tx) {
	if len(n.queueBuf) != n.cfg.NumShards {
		n.queueBuf = make([][]*chain.Tx, n.cfg.NumShards)
	}
	for s := range n.queueBuf {
		n.queueBuf[s] = n.queueBuf[s][:0]
	}
	return n.queueBuf, n.dsQueueBuf[:0]
}

// EpochRun carries one epoch's in-flight pipeline state between the
// public stages BeginEpoch, ExecuteShard and FinalizeEpoch. The
// monolithic RunEpoch drives all three in-process; the node runtime
// (internal/node) runs BeginEpoch and FinalizeEpoch on the DS
// committee's replica and ships the queues to shard nodes as encoded
// frames, collecting their MicroBlocks the same way.
//
// The queues exposed by Queues and DSQueue alias per-network scratch
// buffers: they are valid until the network's next BeginEpoch.
type EpochRun struct {
	net        *Network
	stats      *EpochStats
	sum        obs.EpochSummary
	queues     [][]*chain.Tx
	dsQueue    []*chain.Tx
	anyDown    bool
	epochStart time.Time
	workers    int
	collectFB  bool
	// rejects are the dispatch-rejection receipts, kept so a collected
	// FinalBlock carries every receipt of the epoch.
	rejects []*chain.Receipt
}

// Epoch returns the epoch this run processes.
func (r *EpochRun) Epoch() uint64 { return r.stats.Epoch }

// Queues returns the dispatched per-shard queues (valid until the next
// BeginEpoch).
func (r *EpochRun) Queues() [][]*chain.Tx { return r.queues }

// DSQueue returns the transactions dispatched to the DS committee
// (valid until the next BeginEpoch).
func (r *EpochRun) DSQueue() []*chain.Tx { return r.dsQueue }

// CollectFinalBlock makes FinalizeEpoch assemble and return a
// FinalBlock for this run. Off by default: the monolithic pipeline
// commits state in place and has no use for the (state-root hashing)
// block, so RunEpoch stays as fast as before the node runtime existed.
func (r *EpochRun) CollectFinalBlock() { r.collectFB = true }

// FinalBlock is the DS committee's per-epoch commitment, broadcast to
// every node so replicas converge: the raw shard StateDeltas that
// survived the merge (in shard order), the merged account delta, every
// receipt of the epoch, the DS committee's own sequential batch
// (replicas re-execute it — DS execution is deterministic), and the
// resulting state root for end-to-end verification.
type FinalBlock struct {
	Epoch    uint64
	Deltas   []*chain.StateDelta
	Accounts *chain.AccountDelta
	Receipts []*chain.Receipt
	DSBatch  []*chain.Tx
	// StateRoot is Network.StateRoot after the epoch fully committed;
	// replicas reject a block whose replayed root disagrees.
	StateRoot string
}

// BeginEpoch starts an epoch: it drains the mempool, dispatches the
// packet (Sec. 4.3) and returns the run with the per-shard and DS
// queues routed. Callers execute the queues — ExecuteShard in-process,
// or remote shard nodes in the node runtime — and hand the MicroBlocks
// to FinalizeEpoch.
func (n *Network) BeginEpoch() *EpochRun {
	n.mu.Lock()
	pending := n.mempool
	n.mempool = nil
	n.m.mempool.Set(0)
	n.mu.Unlock()
	if n.pool != nil {
		// The pool's batch is gas-price ordered and deterministic for a
		// given pending multiset; appending after the legacy queue keeps
		// Submit-path transactions (tests, setup phases) ahead of it.
		pending = append(pending, n.pool.DrainEpoch(n.Epoch)...)
	}

	run := &EpochRun{
		net:        n,
		epochStart: time.Now(),
		stats:      &EpochStats{Epoch: n.Epoch, PerShard: make([]int, n.cfg.NumShards)},
		sum:        obs.EpochSummary{Epoch: n.Epoch},
		// A durable network journals every epoch's FinalBlock, so the
		// block is always assembled when a store is attached.
		collectFB: n.store != nil,
	}
	stats := run.stats
	n.Disp.ResetEpoch()
	run.anyDown = n.applyAvailability()

	// Worker budget for the parallel pipeline: bounded by the host's
	// GOMAXPROCS so the pool never oversubscribes the machine.
	run.workers = 1
	if n.cfg.ParallelShards {
		run.workers = runtime.GOMAXPROCS(0)
	}

	// Phase 1: lookup nodes dispatch the packet (Sec. 4.3). Constraint
	// evaluation fans out over the worker pool; placement is committed
	// in submission order, so the routing is deterministic.
	t0 := time.Now()
	decisions := n.Disp.DispatchAll(pending, run.workers)
	queues, dsQueue := n.epochQueues()
	for i, tx := range pending {
		dec := decisions[i]
		if dec.Rejected {
			stats.Rejected++
			n.rec.TxDispatched(n.Epoch, tx.ID, rejectedShard, dec.Reason)
			rec := &chain.Receipt{TxID: tx.ID, Success: false, Error: dec.Reason, Shard: rejectedShard, Epoch: n.Epoch}
			n.record(rec)
			run.rejects = append(run.rejects, rec)
			continue
		}
		n.rec.TxDispatched(n.Epoch, tx.ID, dec.Shard, dec.Reason)
		if run.anyDown && dec.Reason == dispatch.ReasonShardUnavailable {
			stats.Escalated++
		}
		if dec.Shard == dispatch.DS {
			dsQueue = append(dsQueue, tx)
		} else {
			queues[dec.Shard] = append(queues[dec.Shard], tx)
		}
	}
	n.dsQueueBuf = dsQueue
	run.queues = queues
	run.dsQueue = dsQueue
	run.sum.Dispatch = time.Since(t0)
	if run.anyDown {
		n.m.escalatedTxs.Add(int64(stats.Escalated))
		for s, down := range n.downBuf {
			if down {
				n.m.escalations.Inc()
				n.rec.ShardEscalated(n.Epoch, s, stats.Escalated)
			}
		}
	}
	return run
}

// RunEpoch processes the current mempool through one full epoch and
// returns its statistics. It is the monolithic composition of the
// stage API: BeginEpoch, ExecuteShard over every queue (concurrently
// when ParallelShards is set), FinalizeEpoch.
func (n *Network) RunEpoch() (*EpochStats, error) {
	run := n.BeginEpoch()

	// Phase 2: shards execute their queues — concurrently on a worker
	// pool bounded by GOMAXPROCS when ParallelShards is set, else
	// back-to-back. MicroBlocks land in a slice indexed by shard, so
	// the downstream merge sees the same input either way; the modelled
	// epoch time charges the maximum per-shard execution time (shards
	// are distinct machines in the real network).
	blocks := make([]*MicroBlock, n.cfg.NumShards)
	errs := make([]error, n.cfg.NumShards)
	if run.workers > 1 && n.cfg.NumShards > 1 {
		poolWorkers := run.workers
		if poolWorkers > n.cfg.NumShards {
			poolWorkers = n.cfg.NumShards
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < poolWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= n.cfg.NumShards {
						return
					}
					blocks[s], errs[s] = n.ExecuteShard(s, run.queues[s])
				}
			}()
		}
		wg.Wait()
	} else {
		for s := 0; s < n.cfg.NumShards; s++ {
			blocks[s], errs[s] = n.ExecuteShard(s, run.queues[s])
		}
	}
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}

	stats, _, err := n.FinalizeEpoch(run, blocks)
	return stats, err
}

// FinalizeEpoch completes an epoch begun with BeginEpoch: the DS
// committee's three-way merge of the surviving MicroBlocks, sequential
// DS execution of the unsharded queue, the modelled consensus charge,
// and the epoch counters. blocks is indexed by shard; a nil entry
// means the shard's MicroBlock never arrived (in the node runtime: its
// frame was dropped, corrupted, or timed out at the transport layer)
// and is handled like an injected loss — nothing from the shard
// commits, its whole batch is requeued, and its committee is charged a
// view change.
//
// The returned FinalBlock is nil unless run.CollectFinalBlock was
// called.
func (n *Network) FinalizeEpoch(run *EpochRun, blocks []*MicroBlock) (*EpochStats, *FinalBlock, error) {
	stats := run.stats
	sum := run.sum
	queues, dsQueue := run.queues, run.dsQueue

	var fb *FinalBlock
	if run.collectFB {
		fb = &FinalBlock{Epoch: stats.Epoch, Receipts: run.rejects}
	}

	var allDeltas []*chain.StateDelta
	accDelta := chain.NewAccountDelta()
	if cap(n.perShardBuf) < n.cfg.NumShards {
		n.perShardBuf = make([]int, n.cfg.NumShards)
	}
	perShardCounts := n.perShardBuf[:n.cfg.NumShards]
	var faulted []int
	for s, mb := range blocks {
		if mb == nil {
			// The MicroBlock never arrived: in the node runtime its frame
			// was dropped, corrupted, or timed out at the transport layer.
			// Handled exactly like an injected loss — nothing from the
			// shard commits, its whole batch is requeued — except no
			// execution time is charged (the DS committee cannot observe
			// how long a vanished shard ran, as with a crash).
			lost := len(queues[s])
			n.m.faultDrops.Inc()
			n.m.faultLostTxs.Add(int64(lost))
			n.rec.ShardFault(n.Epoch, s, "transport", lost)
			stats.Lost += lost
			if n.faultStreak != nil {
				n.faultStreak[s]++
			}
			faulted = append(faulted, s)
			perShardCounts[s] = 0
			n.requeue(s, queues[s])
			continue
		}
		d := n.faults.At(n.Epoch, s)
		switch {
		case d.Kind == fault.Straggle:
			// The block seals late but intact: record the injection and
			// process it like a healthy one (ExecuteShard already scaled the
			// modeled execution time).
			n.m.faultStraggles.Inc()
			n.rec.ShardFault(n.Epoch, s, d.Kind.String(), 0)
		case d.Kind.Lost():
			// The DS merge never sees a valid MicroBlock from this shard
			// (crash, drop in transit, or a StateDelta failing validation):
			// nothing commits, the shard's whole batch is requeued through
			// the mempool's watermark-rewind path, and the unavailability
			// streak advances toward escalation.
			lost := len(queues[s])
			switch d.Kind {
			case fault.CrashMidEpoch:
				n.m.faultCrashes.Inc()
			case fault.DropMicroBlock:
				n.m.faultDrops.Inc()
			case fault.CorruptDelta:
				n.m.faultCorruptions.Inc()
			}
			n.m.faultLostTxs.Add(int64(lost))
			n.rec.ShardFault(n.Epoch, s, d.Kind.String(), lost)
			stats.Lost += lost
			n.faultStreak[s]++
			faulted = append(faulted, s)
			if d.Kind != fault.CrashMidEpoch {
				// Dropped and corrupt blocks were fully executed before
				// being lost; a crashed shard never finished its run.
				if mb.ExecTime > sum.ExecMax {
					sum.ExecMax = mb.ExecTime
				}
				sum.ExecSum += mb.ExecTime
			}
			perShardCounts[s] = 0
			n.requeue(s, queues[s])
			continue
		}
		if n.faultStreak != nil {
			n.faultStreak[s] = 0
		}
		if mb.ExecTime > sum.ExecMax {
			sum.ExecMax = mb.ExecTime
		}
		sum.ExecSum += mb.ExecTime
		for _, r := range mb.Receipts {
			n.record(r)
			if r.Success {
				stats.Committed++
				stats.PerShard[s]++
			} else {
				stats.Failed++
			}
		}
		if fb != nil {
			fb.Receipts = append(fb.Receipts, mb.Receipts...)
		}
		perShardCounts[s] = len(mb.Receipts)
		allDeltas = append(allDeltas, mb.Deltas...)
		accDelta.Merge(mb.Accounts)
		stats.Deferred += len(mb.Deferred)
		n.requeue(s, mb.Deferred)
	}
	// Every shard whose block was lost runs a PBFT view change before
	// the next epoch; the committees re-elect in parallel, so the
	// modeled wall time charges one round when at least one faulted.
	var viewChange time.Duration
	if len(faulted) > 0 {
		if n.cfg.ModelConsensus {
			viewChange = n.shardModel.ViewChangeTime()
		}
		stats.ViewChanges = len(faulted)
		for _, s := range faulted {
			n.m.viewChanges.Inc()
			n.rec.ViewChange(n.Epoch, s, viewChange)
		}
	}

	// Phase 3: the DS committee merges all StateDeltas (three-way
	// merge, Sec. 4.3) and applies the account delta. Deltas were
	// collected in shard order and contracts are visited in address
	// order, so the merge is byte-for-byte deterministic regardless of
	// how phase 2 was scheduled.
	t1 := time.Now()
	byContract := make(map[chain.Address][]*chain.StateDelta)
	for _, d := range allDeltas {
		stats.DeltaEntries += d.Size()
		byContract[d.Contract] = append(byContract[d.Contract], d)
	}
	addrs := make([]chain.Address, 0, len(byContract))
	for addr := range byContract {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	for _, addr := range addrs {
		c := n.Contracts.Get(addr)
		merged := c.Snapshot().Copy()
		if err := chain.MergeDeltas(merged, byContract[addr]); err != nil {
			n.m.mergeConflicts.Inc()
			return nil, nil, fmt.Errorf("epoch %d: %w", n.Epoch, err)
		}
		c.ReplaceState(merged)
		n.touchDeltas(addr, byContract[addr], merged)
	}
	if err := n.Accounts.Apply(accDelta); err != nil {
		return nil, nil, err
	}
	n.touchAccountDelta(accDelta)
	sum.Merge = time.Since(t1)
	n.m.mergeContracts.Add(int64(len(addrs)))
	n.m.deltaEntries.Observe(int64(stats.DeltaEntries))
	n.m.mergeTime.ObserveDuration(sum.Merge)
	n.rec.DeltaMerged(n.Epoch, len(addrs), len(allDeltas), stats.DeltaEntries, 0, sum.Merge)

	// Phase 4: the DS committee executes the remaining potentially
	// conflicting transactions sequentially on the merged state.
	t2 := time.Now()
	n.rec.ShardExecStart(n.Epoch, dispatch.DS, len(dsQueue))
	if fb != nil {
		// Snapshot the DS batch before execution: dsQueue aliases a
		// per-network scratch buffer reused next epoch, and replicas
		// need the exact pre-execution sequence to replay.
		fb.DSBatch = append([]*chain.Tx(nil), dsQueue...)
	}
	dsCommitted, dsFailed, dsDeferred, dsReceipts := n.runDS(dsQueue)
	sum.DSExec = time.Since(t2)
	n.rec.ShardExecEnd(n.Epoch, dispatch.DS, sum.DSExec)
	stats.Committed += dsCommitted
	stats.DSCount = dsCommitted
	stats.Failed += dsFailed
	stats.Deferred += len(dsDeferred)
	n.requeue(dispatch.DS, dsDeferred)

	// Phase 5: modelled consensus cost (plus the view-change round when
	// an injected fault lost a MicroBlock this epoch).
	if n.cfg.ModelConsensus {
		shardRound, dsRound := consensus.EpochConsensusParts(
			n.shardModel, n.dsModel, perShardCounts, len(dsQueue))
		sum.Consensus = shardRound + dsRound + viewChange
	}
	sum.Wall = sum.Dispatch + sum.ExecMax + sum.Merge + sum.DSExec + sum.Consensus
	sum.Measured = time.Since(run.epochStart)
	stats.WallTime = sum.Wall
	stats.MeasuredTime = sum.Measured

	sum.Committed = stats.Committed
	sum.Failed = stats.Failed
	sum.Rejected = stats.Rejected
	sum.Deferred = stats.Deferred
	sum.DSCommitted = dsCommitted
	sum.DeltaEntries = stats.DeltaEntries
	n.finishEpochMetrics(sum)
	n.rec.EpochFinalized(sum)

	if fb != nil {
		fb.Deltas = allDeltas
		fb.Accounts = accDelta
		fb.Receipts = append(fb.Receipts, dsReceipts...)
		t3 := time.Now()
		fb.StateRoot = n.StateRoot()
		n.m.rootTime.ObserveDuration(time.Since(t3))
		n.m.rootLeaves.Set(int64(n.roots.Len()))
	}

	n.Epoch++
	n.BlockNumber++
	if n.store != nil {
		if err := n.store.EpochCommitted(n, fb, n.Checkpoint()); err != nil {
			return nil, nil, fmt.Errorf("state store epoch %d: %w", fb.Epoch, err)
		}
	}
	return stats, fb, nil
}

// ApplyFinalBlock replays a DS-committed epoch on a replica: the
// three-way delta merge (contracts visited in address order, exactly
// as FinalizeEpoch merges), the account delta, the shipped receipts,
// and a deterministic re-execution of the DS batch. The replica's
// resulting state root must match the block's; a mismatch (a corrupted
// frame that survived decoding, or replica divergence) fails with
// ErrStateDivergence and commits nothing further.
//
// The replica must be at the block's epoch: it is built from the same
// deterministic genesis as the DS committee's network and advances
// only through this method.
func (n *Network) ApplyFinalBlock(fb *FinalBlock) error {
	if err := n.replayFinalBlock(fb); err != nil {
		return err
	}
	if n.store != nil {
		if err := n.store.EpochCommitted(n, fb, n.Checkpoint()); err != nil {
			return fmt.Errorf("state store epoch %d: %w", fb.Epoch, err)
		}
	}
	return nil
}

// replayFinalBlock is the store-agnostic core of ApplyFinalBlock,
// shared with journal replay during recovery (which must not
// re-journal the block it is reading).
func (n *Network) replayFinalBlock(fb *FinalBlock) error {
	if fb.Epoch != n.Epoch {
		return fmt.Errorf("apply final block: %w: block epoch %d, replica epoch %d", ErrEpochSkew, fb.Epoch, n.Epoch)
	}
	byContract := make(map[chain.Address][]*chain.StateDelta)
	for _, d := range fb.Deltas {
		byContract[d.Contract] = append(byContract[d.Contract], d)
	}
	addrs := make([]chain.Address, 0, len(byContract))
	for addr := range byContract {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	for _, addr := range addrs {
		c := n.Contracts.Get(addr)
		if c == nil {
			return fmt.Errorf("apply final block epoch %d: %w: contract %s", fb.Epoch, ErrUnknownContract, addr)
		}
		merged := c.Snapshot().Copy()
		if err := chain.MergeDeltas(merged, byContract[addr]); err != nil {
			return fmt.Errorf("apply final block epoch %d: %w", fb.Epoch, err)
		}
		c.ReplaceState(merged)
		n.touchDeltas(addr, byContract[addr], merged)
	}
	if fb.Accounts != nil {
		if err := n.Accounts.Apply(fb.Accounts); err != nil {
			return fmt.Errorf("apply final block epoch %d: %w", fb.Epoch, err)
		}
		n.touchAccountDelta(fb.Accounts)
	}
	for _, r := range fb.Receipts {
		n.record(r)
	}
	// DS execution produced no deltas on the committee (it commits
	// directly to canonical state), so replicas re-run the batch; runDS
	// is deterministic, and the deferred tail is dropped here — the DS
	// committee requeued it and will ship it in a later block.
	n.runDS(fb.DSBatch)
	if fb.StateRoot != "" {
		if root := n.StateRoot(); root != fb.StateRoot {
			return fmt.Errorf("apply final block epoch %d: %w: replica root %s, block root %s",
				fb.Epoch, ErrStateDivergence, root, fb.StateRoot)
		}
	}
	n.Epoch++
	n.BlockNumber++
	return nil
}

// rejectedShard labels receipts and trace events for transactions the
// dispatcher refused (dispatch.DS, -1, labels the DS committee).
const rejectedShard = -2

// applyAvailability refreshes the dispatcher's shard-availability mask
// from the fault streaks: a shard that lost its MicroBlock for
// Config.FaultEscalation consecutive epochs is marked down and its
// traffic reroutes to DS execution. The mask clears per shard as soon
// as the shard seals a healthy block (a down shard receives no
// transactions, so its next empty epoch is the recovery probe). It
// reports whether any shard is down this epoch; without a fault plan
// it does nothing.
func (n *Network) applyAvailability() bool {
	if n.faults.Empty() {
		return false
	}
	if len(n.faultStreak) != n.cfg.NumShards {
		n.faultStreak = make([]int, n.cfg.NumShards)
		n.downBuf = make([]bool, n.cfg.NumShards)
	}
	any := false
	for s, streak := range n.faultStreak {
		down := streak >= n.cfg.FaultEscalation
		n.downBuf[s] = down
		any = any || down
	}
	if any {
		n.Disp.SetUnavailable(n.downBuf)
	} else {
		n.Disp.SetUnavailable(nil)
	}
	return any
}

// finishEpochMetrics folds one epoch's summary into the always-on
// registry instruments.
func (n *Network) finishEpochMetrics(sum obs.EpochSummary) {
	n.m.epochs.Inc()
	n.m.committed.Add(int64(sum.Committed))
	n.m.failed.Add(int64(sum.Failed))
	n.m.rejected.Add(int64(sum.Rejected))
	n.m.deferred.Add(int64(sum.Deferred))
	n.m.dsCommitted.Add(int64(sum.DSCommitted))
	n.m.dispatchTime.ObserveDuration(sum.Dispatch)
	n.m.dsExecTime.ObserveDuration(sum.DSExec)
	n.m.consensusTime.ObserveDuration(sum.Consensus)
	n.m.wallTime.ObserveDuration(sum.Wall)
	n.m.measuredTime.ObserveDuration(sum.Measured)
	// Fold the epoch's compiled-execution dispatch counters out of each
	// contract's program (the counters there are cumulative-since-drain,
	// so per-epoch drains sum correctly in the registry).
	for _, c := range n.Contracts.All() {
		if c.Compiled == nil {
			continue
		}
		st := c.Compiled.DrainStats()
		n.m.compileFastRuns.Add(int64(st.FastRuns))
		n.m.compileGenericRuns.Add(int64(st.GenericRuns))
		n.m.compileFallbackRuns.Add(int64(st.FallbackRuns))
		n.m.compilePoolRecycles.Add(int64(st.PoolRecycles))
	}
}

// StateRoot returns the authenticated root over the full observable
// network state: every contract's canonical state and every account's
// balance and nonce. It reads the incrementally maintained trie — an
// epoch that changed k components rehashes O(k·depth) trie nodes, not
// the whole state. Two runs of the same workload must agree on it
// regardless of execution mode — the determinism tests assert this
// across sequential and parallel epochs, and the root-equivalence
// suite checks it against RecomputeStateRoot (a from-scratch render)
// after every epoch.
func (n *Network) StateRoot() string {
	return n.roots.Root()
}

func (n *Network) record(r *chain.Receipt) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.receipts[r.TxID] = r
}

// requeue returns deferred transactions from a shard (or the DS
// committee, shard == dispatch.DS) to the mempool — into the admission
// pool when one is attached (bypassing admission checks: the
// transactions were already admitted), else the legacy queue.
func (n *Network) requeue(shard int, txs []*chain.Tx) {
	if len(txs) == 0 {
		return
	}
	n.rec.TxRequeued(n.Epoch, shard, len(txs))
	if n.pool != nil {
		n.pool.Requeue(txs)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mempool = append(n.mempool, txs...)
	n.m.mempool.Set(int64(len(n.mempool)))
}

// shardRun is the per-shard execution context for one epoch.
type shardRun struct {
	net      *Network
	shard    int
	overlays map[chain.Address]*chain.Overlay
	// ovCache, when non-nil, recycles shard overlays across epochs (see
	// Network.ovPool). Grouped-path worker runs leave it nil.
	ovCache  map[chain.Address]*chain.Overlay
	accDelta *chain.AccountDelta
	// localBal tracks each account's balance view inside the shard
	// (base balance + local deltas) for overdraft checks.
	localBal map[chain.Address]*big.Int
	// gasSpent tracks per-sender gas spending for split gas accounting.
	gasSpent map[chain.Address]*big.Int
	// evalCtx is reused across the run's transactions so the
	// interpreter's per-call environment and key scratch persist.
	evalCtx eval.Context
	// txOv is the pooled per-transaction rollback overlay: Reset onto
	// the contract's shard overlay before each call, committed or
	// discarded after. One pooled overlay suffices because a shardRun
	// executes its queue on a single goroutine.
	txOv *chain.Overlay
	// Scratch big.Ints for per-transaction gas arithmetic. Safe to
	// reuse because every consumer (balance views, account deltas,
	// allowance comparisons) copies or folds the value immediately.
	scrCost, scrPrice, scrNeg, scrSum, scrBudget, scrTotal, scrBlk, scrCB, scrAllow big.Int
}

func (n *Network) newShardRun(s int) *shardRun {
	return &shardRun{
		net:      n,
		shard:    s,
		overlays: make(map[chain.Address]*chain.Overlay),
		accDelta: chain.NewAccountDelta(),
		localBal: make(map[chain.Address]*big.Int),
		gasSpent: make(map[chain.Address]*big.Int),
	}
}

func (r *shardRun) overlayFor(c *chain.Contract) *chain.Overlay {
	ov, ok := r.overlays[c.Addr]
	if !ok {
		if ov, ok = r.ovCache[c.Addr]; ok {
			// Recycled from a previous epoch: rewind onto the current
			// canonical snapshot, keeping the write-table buckets.
			ov.Reset(c.Snapshot(), c.Checked.FieldTypes)
		} else {
			ov = chain.NewOverlay(c.Snapshot(), c.Checked.FieldTypes)
			if r.ovCache != nil {
				r.ovCache[c.Addr] = ov
			}
		}
		r.overlays[c.Addr] = ov
	}
	return ov
}

// balanceView returns the shard-local view of an account balance.
func (r *shardRun) balanceView(a chain.Address) *big.Int {
	if b, ok := r.localBal[a]; ok {
		return b
	}
	acc := r.net.Accounts.Get(a)
	b := new(big.Int)
	if acc != nil {
		b.Set(acc.Balance)
	}
	r.localBal[a] = b
	return b
}

func (r *shardRun) credit(a chain.Address, v *big.Int) {
	b := r.balanceView(a)
	b.Add(b, v)
	r.accDelta.AddBalance(a, v)
}

func (r *shardRun) debit(a chain.Address, v *big.Int) {
	neg := r.scrNeg.Neg(v)
	r.credit(a, neg)
}

// gasAllowance returns how much native token the sender may spend on
// gas within this shard (Sec. 4.2.2).
func (r *shardRun) gasAllowance(sender chain.Address) *big.Int {
	acc := r.net.Accounts.Get(sender)
	if acc == nil {
		return r.scrAllow.SetUint64(0)
	}
	if !r.net.cfg.SplitGasAccounting || r.net.cfg.NumShards <= 1 {
		return r.scrAllow.Set(acc.Balance)
	}
	// Half the balance to the sender's home shard, the rest split
	// across the other shards.
	half := r.scrAllow.Rsh(acc.Balance, 1)
	if chain.ShardOf(sender, r.net.cfg.NumShards) == r.shard {
		return half
	}
	return half.Div(half, r.scrPrice.SetInt64(int64(r.net.cfg.NumShards-1)))
}

// ExecuteShard executes one shard's transaction queue within the shard
// gas limit and produces its MicroBlock. It is the phase-2 stage of
// the epoch pipeline: RunEpoch calls it for every shard in-process,
// while the node runtime runs it on each shard node's own replica
// against a queue received over the wire. With IntraShardWorkers > 1
// the batch first attempts the grouped parallel path (groups.go); any
// fallback condition reruns the batch on the sequential path below —
// both produce bit-identical MicroBlocks when the grouped path
// completes.
func (n *Network) ExecuteShard(s int, queue []*chain.Tx) (*MicroBlock, error) {
	n.rec.ShardExecStart(n.Epoch, s, len(queue))
	n.m.queueDepth.Observe(int64(len(queue)))
	directive := n.faults.At(n.Epoch, s)
	if directive.Kind == fault.CrashMidEpoch {
		// The shard dies mid-epoch: nothing it executed survives and no
		// MicroBlock is sealed. The merge loop records the fault, charges
		// the view change and requeues the batch.
		return &MicroBlock{Shard: s, Epoch: n.Epoch, Accounts: chain.NewAccountDelta()}, nil
	}
	mb, err := n.runShardGrouped(s, queue)
	if err != nil {
		return nil, err
	}
	if mb == nil {
		if mb, err = n.runShardSequential(s, queue); err != nil {
			return nil, err
		}
	}
	if directive.Kind == fault.Straggle {
		// A straggler seals the same block, late: scale the modeled
		// execution time (the epoch waits on its slowest shard).
		factor := directive.Factor
		if factor < 1 {
			factor = 1
		}
		mb.ExecTime = time.Duration(float64(mb.ExecTime) * factor)
	}
	n.m.shardExecTime.ObserveDuration(mb.ExecTime)
	n.m.shardGas.Observe(int64(mb.GasUsed))
	n.rec.ShardExecEnd(n.Epoch, s, mb.ExecTime)
	n.rec.MicroBlockSealed(n.Epoch, s, len(mb.Receipts), len(mb.Deltas), len(mb.Deferred), mb.GasUsed)
	return mb, nil
}

// runShardSequential executes a shard's transaction queue sequentially.
func (n *Network) runShardSequential(s int, queue []*chain.Tx) (*MicroBlock, error) {
	run := n.newShardRun(s)
	run.ovCache = n.ovPool[s]
	mb := &MicroBlock{Shard: s, Epoch: n.Epoch, Accounts: run.accDelta}
	start := time.Now()
	for i, tx := range queue {
		// The block never commits past the MicroBlock gas limit: each
		// transaction runs under the remaining epoch gas, and one that
		// cannot fit in what is left is deferred to the next epoch (with
		// the rest of the queue, preserving order) rather than allowed to
		// blow past the cap.
		remaining := n.cfg.ShardGasLimit - mb.GasUsed
		if remaining == 0 {
			mb.Deferred = append(mb.Deferred, queue[i:]...)
			break
		}
		rec, wait := run.execute(tx, remaining)
		if wait {
			mb.Deferred = append(mb.Deferred, queue[i:]...)
			break
		}
		rec.Shard = s
		rec.Epoch = n.Epoch
		mb.Receipts = append(mb.Receipts, rec)
		mb.GasUsed += rec.GasUsed
	}

	// Extract per-contract state deltas. Extraction counts toward
	// ExecTime: the shard cannot seal its MicroBlock without it, and the
	// grouped path charges the same work inside its worker runs.
	deltas, err := run.extractDeltas()
	if err != nil {
		return nil, err
	}
	mb.Deltas = deltas
	mb.ExecTime = time.Since(start)
	return mb, nil
}

// extractDeltas extracts one StateDelta per contract the run touched.
func (r *shardRun) extractDeltas() ([]*chain.StateDelta, error) {
	var out []*chain.StateDelta
	for addr, ov := range r.overlays {
		if !ov.Touched() {
			continue
		}
		c := r.net.Contracts.Get(addr)
		joins := map[string]signature.Join{}
		if c.Sig != nil {
			joins = c.Sig.Joins
		}
		d, err := ov.ExtractDelta(addr, r.shard, joins)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// execute runs one transaction inside a shard, capped by the epoch's
// remaining MicroBlock gas. remaining == 0 means "no epoch cap" (the
// grouped parallel path runs workers under the declared transaction
// limits and lets the fold re-check the block budget). When the
// transaction cannot complete within a non-zero remaining budget but
// might within a fresh epoch's full limit, execute reports wait=true
// and leaves all shard state — balances, nonces, gas spending —
// untouched so the transaction can be deferred and retried.
func (r *shardRun) execute(tx *chain.Tx, remaining uint64) (_ *chain.Receipt, wait bool) {
	// effLimit is what the interpreter may burn: the transaction's own
	// declared limit, clipped to the epoch budget when one applies
	// (a declared limit of 0 means "unlimited" to the interpreter, so
	// it is clipped too rather than passed through).
	effLimit := tx.GasLimit
	epochCapped := false
	if remaining > 0 && (effLimit == 0 || effLimit > remaining) {
		effLimit = remaining
		epochCapped = true
	}
	rec := &chain.Receipt{TxID: tx.ID}
	// fail finalises a failure receipt: the cause is wrapped with the
	// transaction's identity (the dispatcher's nonce-replay convention)
	// so callers can errors.Is the sentinel through requeue paths, and
	// Error carries the wrapped message.
	fail := func(cause error) (*chain.Receipt, bool) {
		rec.Err = fmt.Errorf("tx %d sender %s nonce %d: %w", tx.ID, tx.From, tx.Nonce, cause)
		rec.Error = rec.Err.Error()
		return rec, false
	}
	// gasCost computes used*price into a per-run scratch; consumers
	// (debit, spent accumulation) fold the value before the next call.
	gasCost := func(used uint64) *big.Int {
		return r.scrCost.Mul(r.scrCost.SetUint64(used), r.scrPrice.SetUint64(tx.GasPrice))
	}

	// Split gas accounting: refuse when the sender's shard budget is
	// exhausted.
	spent := r.gasSpent[tx.From]
	if spent == nil {
		spent = new(big.Int)
		r.gasSpent[tx.From] = spent
	}
	budget := r.scrBudget.Mul(r.scrBudget.SetUint64(tx.GasLimit), r.scrPrice.SetUint64(tx.GasPrice))
	if r.scrSum.Add(spent, budget).Cmp(r.gasAllowance(tx.From)) > 0 {
		return fail(ErrGasExhausted)
	}

	switch tx.Kind {
	case chain.TxTransfer:
		total := r.scrTotal.Add(tx.Amount, budget)
		if r.balanceView(tx.From).Cmp(total) < 0 {
			return fail(ErrInsufficientBalance)
		}
		r.debit(tx.From, tx.Amount)
		r.credit(tx.To, tx.Amount)
		rec.GasUsed = 1
		r.debit(tx.From, gasCost(rec.GasUsed))
		spent.Add(spent, gasCost(rec.GasUsed))
		r.accDelta.BumpNonce(tx.From, tx.Nonce)
		rec.Success = true
		return rec, false
	case chain.TxCall:
		c := r.net.Contracts.Get(tx.To)
		if c == nil {
			return fail(ErrUnknownContract)
		}
		shardOv := r.overlayFor(c)
		txOv := r.txOv
		if txOv == nil {
			txOv = chain.NewOverlay(shardOv, c.Checked.FieldTypes)
			r.txOv = txOv
		} else {
			txOv.Reset(shardOv, c.Checked.FieldTypes)
		}
		ctx := &r.evalCtx
		ctx.Sender = tx.From.Value()
		ctx.Origin = ctx.Sender
		ctx.Amount = value.Int{Ty: ast.TyUint128, V: tx.Amount}
		ctx.BlockNumber = r.scrBlk.SetUint64(r.net.BlockNumber)
		ctx.State = txOv
		ctx.GasLimit = effLimit
		ctx.ContractBalance = r.scrCB.Set(r.balanceView(tx.To))
		res, err := runTransition(&r.net.cfg, c, ctx, tx.Transition, tx.Args)
		if effLimit > 0 && ctx.GasUsed > effLimit {
			// The interpreter's gas check runs after each charge, so a
			// failing run can overshoot the limit by one operation; the
			// block accounting must never see more than the effective
			// limit or the MicroBlock could exceed its gas cap.
			ctx.GasUsed = effLimit
		}
		var oog *eval.OutOfGasError
		if epochCapped && errors.As(err, &oog) && remaining < r.net.cfg.ShardGasLimit {
			// The transaction ran out of the epoch's residual gas, not its
			// own declared budget: a fresh epoch offers more headroom, so
			// defer it instead of failing. Nothing is charged — the failed
			// attempt's state lives only in the discarded tx overlay.
			return nil, true
		}
		rec.GasUsed = ctx.GasUsed
		cost := gasCost(rec.GasUsed)
		// Gas is charged whether or not the transition succeeds.
		r.debit(tx.From, cost)
		spent.Add(spent, cost)
		r.accDelta.BumpNonce(tx.From, tx.Nonce)
		if err != nil {
			return fail(err)
		}
		// Native token movement: accept pulls the amount into the
		// contract; outgoing messages push funds to user recipients.
		if res.Accepted && tx.Amount.Sign() > 0 {
			if r.balanceView(tx.From).Cmp(tx.Amount) < 0 {
				return fail(fmt.Errorf("%w for accepted amount", ErrInsufficientBalance))
			}
			r.debit(tx.From, tx.Amount)
			r.credit(tx.To, tx.Amount)
		}
		for _, m := range res.Messages {
			if err := r.deliverToUser(c.Addr, m); err != nil {
				return fail(err)
			}
		}
		if bad, err := r.overflowGuardViolation(c, shardOv, txOv); err != nil {
			return fail(err)
		} else if bad {
			// Sec. 6: conservative per-shard overflow bound exceeded;
			// the transaction is rejected in-shard (a production system
			// would reroute it to the DS committee).
			r.net.m.overflowTrips.Inc()
			r.net.rec.OverflowGuardTripped(r.net.Epoch, r.shard, tx.ID)
			return fail(ErrOverflowGuard)
		}
		txOv.CommitTo(shardOv)
		rec.Success = true
		rec.Events = res.Events
		return rec, false
	default:
		return fail(errors.New("unsupported transaction kind in shard"))
	}
}

// deliverToUser applies a contract-emitted message to a user account
// (shards may only send to users; contract recipients are filtered at
// dispatch).
func (r *shardRun) deliverToUser(from chain.Address, m value.Msg) error {
	rcp, ok := m.Entries["_recipient"]
	if !ok {
		return fmt.Errorf("%w: message without _recipient", ErrMalformedMessage)
	}
	addr, ok := chain.AddressFromValue(rcp)
	if !ok {
		return fmt.Errorf("%w: malformed _recipient", ErrMalformedMessage)
	}
	if r.net.Accounts.IsContract(addr) {
		return fmt.Errorf("%w %s", ErrContractRecipient, addr)
	}
	if amt, ok := m.Entries["_amount"]; ok {
		iv, ok := amt.(value.Int)
		if !ok {
			return fmt.Errorf("%w: malformed _amount", ErrMalformedMessage)
		}
		if iv.V.Sign() > 0 {
			if r.balanceView(from).Cmp(iv.V) < 0 {
				return fmt.Errorf("contract balance: %w for send", ErrInsufficientBalance)
			}
			r.debit(from, iv.V)
			r.credit(addr, iv.V)
		}
	}
	return nil
}

// overflowGuardViolation implements the Sec. 6 conservative check: for
// every IntMerge component the transaction (overlay txOv) changed,
// the shard's cumulative delta relative to the epoch-start value v0
// must stay within ⌊(MAX − v0)/N⌋ above and ⌊(v0 − MIN)/N⌋ below, so
// that N shards' deltas can never jointly overflow.
func (r *shardRun) overflowGuardViolation(c *chain.Contract, shardOv, txOv *chain.Overlay) (bool, error) {
	if !r.net.cfg.OverflowGuard || c.Sig == nil {
		return false, nil
	}
	n := int64(r.net.cfg.NumShards)
	if n <= 1 {
		return false, nil
	}
	d, err := txOv.ExtractDelta(c.Addr, r.shard, c.Sig.Joins)
	if err != nil {
		return false, err
	}
	base := c.Snapshot()
	for f, fd := range d.Fields {
		if c.Sig.Joins[f] != signature.IntMerge {
			continue
		}
		check := func(keys []value.Value) (bool, error) {
			// Cumulative shard value after this tx vs epoch start.
			var cur, v0 value.Value
			var ok bool
			if keys == nil {
				cur, err = txOv.LoadField(f)
				if err != nil {
					return false, err
				}
				v0, err = base.LoadField(f)
				if err != nil {
					return false, err
				}
			} else {
				cur, ok, err = txOv.MapGet(f, keys)
				if err != nil || !ok {
					return false, err
				}
				v0, ok, err = base.MapGet(f, keys)
				if err != nil {
					return false, err
				}
				if !ok {
					v0 = nil
				}
			}
			ci, ok := cur.(value.Int)
			if !ok {
				return false, nil
			}
			zero := big.NewInt(0)
			base0 := zero
			if v0 != nil {
				if vi, ok := v0.(value.Int); ok {
					base0 = vi.V
				}
			}
			delta := new(big.Int).Sub(ci.V, base0)
			if delta.Sign() >= 0 {
				headroom := new(big.Int).Sub(ast.MaxInt(ci.Ty), base0)
				headroom.Div(headroom, big.NewInt(n))
				return delta.Cmp(headroom) > 0, nil
			}
			footroom := new(big.Int).Sub(base0, ast.MinInt(ci.Ty))
			footroom.Div(footroom, big.NewInt(n))
			neg := new(big.Int).Neg(delta)
			return neg.Cmp(footroom) > 0, nil
		}
		if fd.Whole != nil {
			bad, err := check(nil)
			if err != nil || bad {
				return bad, err
			}
		}
		for _, e := range fd.Entries {
			if e.Kind != chain.IntAdd {
				continue
			}
			bad, err := check(e.Keys)
			if err != nil || bad {
				return bad, err
			}
		}
	}
	return false, nil
}
