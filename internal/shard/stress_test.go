package shard_test

import (
	"math/rand"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
	"math/big"
)

// TestStressShardedMatchesSequential is a heavier version of the
// soundness theorem: 2000 mixed transactions (transfers, mints,
// self-transfers that fall to DS) over 50 users at 1 vs 5 shards.
func TestStressShardedMatchesSequential(t *testing.T) {
	const nUsers = 50
	const nTxs = 2000
	rng := rand.New(rand.NewSource(99))

	type op struct {
		kind, a, b int
		amt        uint64
	}
	ops := make([]op, nTxs)
	for i := range ops {
		ops[i] = op{kind: rng.Intn(10), a: rng.Intn(nUsers), b: rng.Intn(nUsers), amt: uint64(rng.Intn(20) + 1)}
	}

	run := func(numShards int) map[chain.Address]uint64 {
		net, contract, users := deployFT(t, numShards, nUsers, true)
		owner := users[0]
		nonce := uint64(0)
		for _, u := range users {
			nonce++
			net.Submit(&chain.Tx{
				Kind: chain.TxCall, From: owner, To: contract, Nonce: nonce,
				Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
				Transition: "Mint",
				Args:       map[string]value.Value{"recipient": u.Value(), "amount": u128(1 << 30)},
			})
		}
		if _, err := net.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		nonces := make([]uint64, nUsers)
		nonces[0] = nonce
		for _, o := range ops {
			switch {
			case o.kind == 0: // mint to random user (owner-only)
				nonces[0]++
				net.Submit(&chain.Tx{
					Kind: chain.TxCall, From: owner, To: contract, Nonce: nonces[0],
					Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
					Transition: "Mint",
					Args:       map[string]value.Value{"recipient": users[o.b].Value(), "amount": u128(o.amt)},
				})
			case o.kind == 1: // deliberate self-transfer (DS path)
				nonces[o.a]++
				net.Submit(transferTx(users[o.a], users[o.a], contract, nonces[o.a], o.amt))
			default: // ordinary transfer
				to := o.b
				if to == o.a {
					to = (to + 1) % nUsers
				}
				nonces[o.a]++
				net.Submit(transferTx(users[o.a], users[to], contract, nonces[o.a], o.amt))
			}
			// Run an epoch every ~400 submissions to interleave
			// dispatch, execution and merging.
			if net.MempoolSize() >= 400 {
				if _, err := net.RunEpoch(); err != nil {
					t.Fatal(err)
				}
			}
		}
		for net.MempoolSize() > 0 {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		out := make(map[chain.Address]uint64, nUsers)
		for _, u := range users {
			out[u] = balanceOf(t, net, contract, u)
		}
		// total_supply must also agree.
		ts, err := net.Contracts.Get(contract).Snapshot().LoadField("total_supply")
		if err != nil {
			t.Fatal(err)
		}
		out[chain.Address{}] = ts.(value.Int).V.Uint64()
		return out
	}

	seq := run(1)
	for _, n := range []int{2, 5} {
		got := run(n)
		for a, want := range seq {
			if got[a] != want {
				t.Errorf("%d shards: %s = %d, want %d", n, a, got[a], want)
			}
		}
	}
}

var _ = shard.WithShards
