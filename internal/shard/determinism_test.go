package shard_test

import (
	"fmt"
	"testing"

	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// The parallel epoch pipeline must be observationally identical to the
// sequential one: same state roots, same receipts, same per-shard gas.
// This is the acceptance bar for Config.ParallelShards — worker-pool
// scheduling may reorder execution in time but never in effect.

type pipelineResult struct {
	root     string
	receipts map[uint64]string
	shardGas map[int]uint64
}

// runPipeline provisions a fresh environment for the named workload
// and drives it through several epochs in one pipeline mode.
func runPipeline(t *testing.T, name string, parallel bool) *pipelineResult {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if w.Users > 500 {
		// CF donate provisions 100k donor accounts for throughput runs;
		// determinism needs population diversity, not scale.
		w.Users = 500
	}
	env, err := workload.Provision(w, true,
		shard.WithShards(8),
		shard.WithGasLimits(200_000, 200_000),
		shard.WithConsensusModel(false),
		shard.WithParallelism(parallel))
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	const epochs, txsPerEpoch = 3, 500
	for e := 0; e < epochs; e++ {
		for i := env.Net.MempoolSize(); i < txsPerEpoch; i++ {
			ids = append(ids, env.Net.Submit(w.Next(env)))
		}
		if _, err := env.Net.RunEpoch(); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	res := &pipelineResult{
		root:     env.Net.StateRoot(),
		receipts: make(map[uint64]string, len(ids)),
		shardGas: make(map[int]uint64),
	}
	for _, id := range ids {
		r := env.Net.Receipt(id)
		if r == nil {
			res.receipts[id] = "pending"
			continue
		}
		res.receipts[id] = fmt.Sprintf("success=%v gas=%d err=%q shard=%d epoch=%d",
			r.Success, r.GasUsed, r.Error, r.Shard, r.Epoch)
		res.shardGas[r.Shard] += r.GasUsed
	}
	return res
}

// TestParallelPipelineDeterminism runs every evaluation contract's
// workload through the sequential and the worker-pooled pipeline and
// requires bit-identical outcomes.
func TestParallelPipelineDeterminism(t *testing.T) {
	workloads := []string{
		"FT transfer",        // FungibleToken
		"NFT mint",           // NonfungibleToken
		"CF donate",          // Crowdfunding
		"ProofIPFS register", // ProofIPFS
		"UD bestow",          // UDRegistry
	}
	for _, name := range workloads {
		t.Run(name, func(t *testing.T) {
			seq := runPipeline(t, name, false)
			par := runPipeline(t, name, true)
			if seq.root != par.root {
				t.Errorf("state roots diverge: sequential %s, parallel %s", seq.root, par.root)
			}
			if len(seq.receipts) != len(par.receipts) {
				t.Fatalf("receipt counts diverge: sequential %d, parallel %d",
					len(seq.receipts), len(par.receipts))
			}
			mismatches := 0
			for id, want := range seq.receipts {
				if got := par.receipts[id]; got != want {
					mismatches++
					if mismatches <= 5 {
						t.Errorf("tx %d: sequential %s, parallel %s", id, want, got)
					}
				}
			}
			if mismatches > 5 {
				t.Errorf("... and %d more receipt mismatches", mismatches-5)
			}
			for s, want := range seq.shardGas {
				if got := par.shardGas[s]; got != want {
					t.Errorf("shard %d gas diverges: sequential %d, parallel %d", s, want, got)
				}
			}
		})
	}
}
