package shard_test

import (
	"fmt"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/obs"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// Every execution mode must be observationally identical to the
// sequential pipeline: same state roots, same receipts, same per-shard
// gas. This is the acceptance bar for Config.ParallelShards and
// Config.IntraShardWorkers — worker-pool scheduling (across shards or
// across conflict groups within one) may reorder execution in time but
// never in effect.

// execModes are the non-sequential pipelines, each compared against
// the sequential baseline.
var execModes = []struct {
	name     string
	parallel bool
	intra    int
}{
	{"parallel-shards", true, 0},
	{"intra-parallel", false, 4},
	{"parallel+intra", true, 4},
}

type pipelineResult struct {
	root     string
	receipts map[uint64]string
	shardGas map[int]uint64
}

// namedWorkload fetches a fresh workload instance (generator state
// lives in the provisioned Env, but Users/Seed tweaks must not leak
// between runs) under the given stream seed.
func namedWorkload(t *testing.T, name string, seed int64) *workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	w.Seed = seed
	if w.Users > 300 {
		// CF donate provisions 100k donor accounts for throughput runs;
		// determinism needs population diversity, not scale.
		w.Users = 300
	}
	return w
}

// runPipeline provisions a fresh environment for the workload and
// drives it through several epochs in one pipeline mode.
func runPipeline(t *testing.T, w *workload.Workload, parallel bool, intra int, extra ...shard.Option) *pipelineResult {
	t.Helper()
	opts := append([]shard.Option{
		shard.WithShards(8),
		shard.WithGasLimits(200_000, 200_000),
		shard.WithConsensusModel(false),
		shard.WithParallelism(parallel),
		shard.WithIntraShardParallelism(intra),
	}, extra...)
	env, err := workload.Provision(w, true, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	const epochs, txsPerEpoch = 2, 300
	for e := 0; e < epochs; e++ {
		for i := env.Net.MempoolSize(); i < txsPerEpoch; i++ {
			ids = append(ids, env.Net.Submit(w.Next(env)))
		}
		if _, err := env.Net.RunEpoch(); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	res := &pipelineResult{
		root:     env.Net.StateRoot(),
		receipts: make(map[uint64]string, len(ids)),
		shardGas: make(map[int]uint64),
	}
	for _, id := range ids {
		r := env.Net.Receipt(id)
		if r == nil {
			res.receipts[id] = "pending"
			continue
		}
		res.receipts[id] = fmt.Sprintf("success=%v gas=%d err=%q shard=%d epoch=%d",
			r.Success, r.GasUsed, r.Error, r.Shard, r.Epoch)
		res.shardGas[r.Shard] += r.GasUsed
	}
	return res
}

// diffResults requires two pipeline runs to agree bit-for-bit.
func diffResults(t *testing.T, mode string, seq, got *pipelineResult) {
	t.Helper()
	if seq.root != got.root {
		t.Errorf("%s: state roots diverge: sequential %s, got %s", mode, seq.root, got.root)
	}
	if len(seq.receipts) != len(got.receipts) {
		t.Fatalf("%s: receipt counts diverge: sequential %d, got %d",
			mode, len(seq.receipts), len(got.receipts))
	}
	mismatches := 0
	for id, want := range seq.receipts {
		if g := got.receipts[id]; g != want {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("%s: tx %d: sequential %s, got %s", mode, id, want, g)
			}
		}
	}
	if mismatches > 5 {
		t.Errorf("%s: ... and %d more receipt mismatches", mode, mismatches-5)
	}
	for s, want := range seq.shardGas {
		if g := got.shardGas[s]; g != want {
			t.Errorf("%s: shard %d gas diverges: sequential %d, got %d", mode, s, want, g)
		}
	}
}

// TestCrossModeDeterminism runs every evaluation contract's workload
// under three stream seeds through all four pipeline modes and
// requires bit-identical outcomes.
func TestCrossModeDeterminism(t *testing.T) {
	workloads := []string{
		"FT transfer",        // FungibleToken
		"NFT mint",           // NonfungibleToken
		"CF donate",          // Crowdfunding
		"ProofIPFS register", // ProofIPFS
		"UD bestow",          // UDRegistry
	}
	for _, name := range workloads {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42} {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					seq := runPipeline(t, namedWorkload(t, name, seed), false, 0)
					for _, m := range execModes {
						got := runPipeline(t, namedWorkload(t, name, seed), m.parallel, m.intra)
						diffResults(t, m.name, seq, got)
					}
				})
			}
		})
	}
}

// hotRecipientWorkload redirects every third disjoint FT transfer to
// one hot token account, so each shard's batch carries a multi-member
// conflict group (the sequential residue) alongside singleton groups.
func hotRecipientWorkload(t *testing.T, seed int64) *workload.Workload {
	w := namedWorkload(t, "FT transfer disjoint", seed)
	w.Name = "FT transfer hot recipient"
	w.Users = 300
	inner := w.Next
	var i int
	w.Next = func(e *workload.Env) *chain.Tx {
		tx := inner(e)
		if i++; i%3 == 0 {
			// Users[1] is odd-indexed: a recipient-only account in the
			// disjoint stream, so senders stay pairwise distinct.
			tx.Args["to"] = e.Users[1].Value()
		}
		return tx
	}
	return w
}

// TestForcedConflictDeterminism drives the hot-recipient workload
// through all modes: the grouped path must both form multi-member
// groups (sequential residue > 0, observed via the metrics registry)
// and still reproduce the sequential results exactly.
func TestForcedConflictDeterminism(t *testing.T) {
	seq := runPipeline(t, hotRecipientWorkload(t, 1), false, 0)
	for _, m := range execModes {
		reg := obs.NewRegistry()
		got := runPipeline(t, hotRecipientWorkload(t, 1), m.parallel, m.intra,
			shard.WithRegistry(reg))
		diffResults(t, m.name, seq, got)
		if m.intra > 1 {
			snap := reg.Snapshot()
			if n := snap.Histograms["shard.groups"].Count; n == 0 {
				t.Errorf("%s: grouped path never ran (shard.groups count = 0)", m.name)
			}
			if r := snap.Histograms["shard.group_residue"].Sum; r == 0 {
				t.Errorf("%s: hot-recipient conflicts formed no sequential residue", m.name)
			}
		}
	}
}

// TestOpaqueFootprintFallsBack deploys the workload contract without a
// signature (the baseline configuration): every footprint is opaque,
// so the grouped path must fall back to sequential execution — counted
// in shard.group_fallbacks — and still produce the sequential results.
func TestOpaqueFootprintFallsBack(t *testing.T) {
	run := func(intra int, reg *obs.Registry) *pipelineResult {
		w := namedWorkload(t, "FT transfer", 1)
		opts := []shard.Option{
			shard.WithShards(2),
			shard.WithGasLimits(200_000, 200_000),
			shard.WithConsensusModel(false),
			shard.WithIntraShardParallelism(intra),
		}
		if reg != nil {
			opts = append(opts, shard.WithRegistry(reg))
		}
		env, err := workload.Provision(w, false, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var ids []uint64
		for e := 0; e < 2; e++ {
			for i := 0; i < 200; i++ {
				ids = append(ids, env.Net.Submit(w.Next(env)))
			}
			if _, err := env.Net.RunEpoch(); err != nil {
				t.Fatalf("epoch %d: %v", e, err)
			}
		}
		res := &pipelineResult{root: env.Net.StateRoot(), receipts: map[uint64]string{}, shardGas: map[int]uint64{}}
		for _, id := range ids {
			if r := env.Net.Receipt(id); r != nil {
				res.receipts[id] = fmt.Sprintf("success=%v gas=%d err=%q shard=%d", r.Success, r.GasUsed, r.Error, r.Shard)
			}
		}
		return res
	}
	seq := run(0, nil)
	reg := obs.NewRegistry()
	got := run(4, reg)
	diffResults(t, "opaque-intra", seq, got)
	if n := reg.Snapshot().Counters["shard.group_fallbacks"]; n == 0 {
		t.Error("baseline (signatureless) batches never hit the grouped-path fallback counter")
	}
}
