package shard_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/mempool"
	"cosplit/internal/obs"
	"cosplit/internal/shard"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func payTx(from, to chain.Address, nonce, amount uint64) *chain.Tx {
	return &chain.Tx{
		Kind:     chain.TxTransfer,
		From:     from,
		To:       to,
		Nonce:    nonce,
		Amount:   new(big.Int).SetUint64(amount),
		GasLimit: 1,
		GasPrice: 1,
	}
}

// normalizeTrace zeroes the host-measured duration fields (every
// "*_ns" key except the injected-clock timestamp "t_ns") and
// re-serialises each event with sorted keys, so the remaining JSONL is
// fully deterministic: routing, shard placement, counts, sequencing.
func normalizeTrace(t *testing.T, raw []byte) string {
	t.Helper()
	var out strings.Builder
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", i+1, err, line)
		}
		for k := range m {
			if strings.HasSuffix(k, "_ns") && k != "t_ns" {
				m[k] = 0
			}
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.String()
}

// TestGoldenTraceSchema drives a deterministic two-shard workload with
// an injected journal clock and compares the normalised JSONL trace
// against testdata/trace_golden.jsonl. The golden file pins the event
// schema: names, field sets, shard labelling (-1 DS, -2 rejected),
// epoch numbering and event ordering. Regenerate with
//
//	go test ./internal/shard -run GoldenTrace -update-golden
func TestGoldenTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	var tick time.Duration
	journal := obs.NewJournal(&buf, obs.WithClock(func() time.Duration {
		tick += time.Microsecond
		return tick
	}))
	// Two shards, a 3-gas MicroBlock budget (transfers cost 1 gas), the
	// sequential pipeline for a stable cross-shard event order, and a
	// mempool so the trace pins the admission/drain event schema too.
	net := shard.NewNetwork(
		shard.WithShards(2),
		shard.WithGasLimits(3, 1000),
		shard.WithMempool(mempool.DefaultConfig()),
		shard.WithRecorder(journal),
	)
	alice := chain.AddrFromUint(1)
	bob := chain.AddrFromUint(2)
	net.CreateUser(alice, 1_000_000)
	net.CreateUser(bob, 1_000_000)

	// Five transfers from one sender enter through the mempool, land on
	// its home shard and exceed the 3-gas budget: two are deferred and
	// requeued into the pool. A duplicated nonce is refused at
	// admission (tx_pool_rejected); an unknown sender rides the legacy
	// Submit path to exercise the dispatcher rejection label.
	for n := uint64(1); n <= 5; n++ {
		if _, err := net.SubmitTx(payTx(alice, bob, n, 10)); err != nil {
			t.Fatalf("submit nonce %d: %v", n, err)
		}
	}
	if _, err := net.SubmitTx(payTx(alice, bob, 5, 10)); err == nil {
		t.Fatal("duplicate nonce admitted")
	}
	net.Submit(payTx(chain.AddrFromUint(99), bob, 1, 10)) // unknown sender
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 drains the two deferred transfers back out of the pool.
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	got := normalizeTrace(t, buf.Bytes())
	golden := filepath.Join("testdata", "trace_golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace schema drifted from %s.\nGot:\n%s\nWant:\n%s\n(run with -update-golden if the change is intentional)",
			golden, got, want)
	}
}

// TestGoldenTraceIntraSchema pins the intra-shard parallel path's
// trace events — shard_groups_formed and group_fold — alongside the
// rest of the epoch schema. One shard, two independent senders with
// disjoint recipients: the grouped executor forms two conflict groups
// and folds them back. Regenerate with
//
//	go test ./internal/shard -run GoldenTraceIntra -update-golden
func TestGoldenTraceIntraSchema(t *testing.T) {
	var buf bytes.Buffer
	var tick time.Duration
	journal := obs.NewJournal(&buf, obs.WithClock(func() time.Duration {
		tick += time.Microsecond
		return tick
	}))
	net := shard.NewNetwork(
		shard.WithShards(1),
		shard.WithGasLimits(100, 1000),
		shard.WithIntraShardParallelism(2),
		shard.WithRecorder(journal),
	)
	alice := chain.AddrFromUint(1)
	bob := chain.AddrFromUint(2)
	carol := chain.AddrFromUint(3)
	dave := chain.AddrFromUint(4)
	for _, u := range []chain.Address{alice, bob, carol, dave} {
		net.CreateUser(u, 1_000_000)
	}
	// Two sender chains with disjoint recipients: alice's transfers
	// conflict with each other (same sender account), not with carol's,
	// so the batch partitions into exactly two groups.
	for n := uint64(1); n <= 2; n++ {
		net.Submit(payTx(alice, bob, n, 10))
		net.Submit(payTx(carol, dave, n, 10))
	}
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	got := normalizeTrace(t, buf.Bytes())
	if !strings.Contains(got, `"event":"shard_groups_formed"`) {
		t.Fatal("intra-parallel run emitted no shard_groups_formed event")
	}
	if !strings.Contains(got, `"event":"group_fold"`) {
		t.Fatal("intra-parallel run emitted no group_fold event")
	}
	golden := filepath.Join("testdata", "trace_golden_intra.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace schema drifted from %s.\nGot:\n%s\nWant:\n%s\n(run with -update-golden if the change is intentional)",
			golden, got, want)
	}
}

// TestJournalReproducesEpochStats is the tentpole acceptance check: a
// 4-shard run's epoch_finalized journal event must carry exactly the
// numbers RunEpoch returned, and the StageCollector's per-stage
// breakdown must sum to the recorded modelled wall time.
func TestJournalReproducesEpochStats(t *testing.T) {
	var buf bytes.Buffer
	journal := obs.NewJournal(&buf)
	col := obs.NewStageCollector()
	net := shard.NewNetwork(
		shard.WithShards(4),
		shard.WithRecorder(journal),
		shard.WithRecorder(col),
	)
	users := make([]chain.Address, 8)
	for i := range users {
		users[i] = chain.AddrFromUint(uint64(i + 1))
		net.CreateUser(users[i], 1_000_000)
	}
	for i := 0; i < 32; i++ {
		net.Submit(payTx(users[i%8], users[(i+3)%8], uint64(i/8+1), 5))
	}
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Flush(); err != nil {
		t.Fatal(err)
	}

	var fin map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad journal line: %v\n%s", err, line)
		}
		if m["event"] == "epoch_finalized" {
			fin = m
		}
	}
	if fin == nil {
		t.Fatal("no epoch_finalized event in the journal")
	}
	wantCounts := map[string]int{
		"committed":     stats.Committed,
		"failed":        stats.Failed,
		"rejected":      stats.Rejected,
		"deferred":      stats.Deferred,
		"ds_committed":  stats.DSCount,
		"delta_entries": stats.DeltaEntries,
	}
	for k, want := range wantCounts {
		if got := int(fin[k].(float64)); got != want {
			t.Errorf("epoch_finalized %s = %d, stats say %d", k, got, want)
		}
	}
	if got := time.Duration(int64(fin["wall_ns"].(float64))); got != stats.WallTime {
		t.Errorf("epoch_finalized wall_ns = %v, stats say %v", got, stats.WallTime)
	}
	if got := time.Duration(int64(fin["measured_ns"].(float64))); got != stats.MeasuredTime {
		t.Errorf("epoch_finalized measured_ns = %v, stats say %v", got, stats.MeasuredTime)
	}

	sum := col.Last()
	if sum.Epoch != stats.Epoch || sum.Committed != stats.Committed {
		t.Errorf("collector summary %+v disagrees with stats %+v", sum, stats)
	}
	if recomposed := sum.Dispatch + sum.ExecMax + sum.Merge + sum.DSExec + sum.Consensus; recomposed != sum.Wall {
		t.Errorf("stage breakdown %v does not recompose wall %v", recomposed, sum.Wall)
	}
	if sum.Wall != stats.WallTime {
		t.Errorf("collector wall %v != stats wall %v", sum.Wall, stats.WallTime)
	}
}

// TestTraceShardLabels pins the shard labelling convention end to end:
// transfers carry their executing shard id, DS work is -1, dispatcher
// rejections are -2 — in both receipts and trace events.
func TestTraceShardLabels(t *testing.T) {
	var buf bytes.Buffer
	journal := obs.NewJournal(&buf)
	net := shard.NewNetwork(shard.WithShards(2), shard.WithRecorder(journal))
	a := chain.AddrFromUint(1)
	net.CreateUser(a, 1_000_000)
	okID := net.Submit(payTx(a, chain.AddrFromUint(2), 1, 10))
	badID := net.Submit(payTx(chain.AddrFromUint(42), a, 1, 10))
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := journal.Flush(); err != nil {
		t.Fatal(err)
	}
	shards := map[uint64]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		if m["event"] == "tx_dispatched" {
			shards[uint64(m["tx"].(float64))] = int(m["shard"].(float64))
		}
	}
	if s, ok := shards[okID]; !ok || s < 0 {
		t.Errorf("committed transfer labelled shard %d (%v), want >= 0", s, ok)
	}
	if s := shards[badID]; s != -2 {
		t.Errorf("rejected tx labelled shard %d, want -2", s)
	}
	rec := net.Receipt(badID)
	if rec == nil || rec.Shard != -2 {
		t.Errorf("rejected receipt = %+v, want Shard -2", rec)
	}
}
