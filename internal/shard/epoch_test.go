package shard_test

import (
	"math/big"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/obs"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

// TestGasLimitDefersTransactions: transactions beyond the shard gas
// limit are deferred to the next epoch, not dropped.
func TestGasLimitDefersTransactions(t *testing.T) {
	// A tiny gas limit: roughly 2 transfers per epoch.
	net := shard.NewNetwork(shard.WithGasLimits(100, 100))
	deployer := chain.AddrFromUint(999)
	net.CreateUser(deployer, 1<<40)
	owner := chain.AddrFromUint(1)
	net.CreateUser(owner, 1<<40)
	contract, err := net.DeployContract(deployer, contracts.FungibleToken, ftParams(owner), ftQuery())
	if err != nil {
		t.Fatal(err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		net.Submit(transferTx(owner, chain.AddrFromUint(uint64(100+i)), contract, uint64(i+1), 1))
	}
	committed := 0
	epochs := 0
	for net.MempoolSize() > 0 {
		stats, err := net.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		committed += stats.Committed
		epochs++
		if epochs > 20 {
			t.Fatal("gas-limited epochs never drained the mempool")
		}
	}
	if committed != total {
		t.Errorf("committed %d of %d across %d epochs", committed, total, epochs)
	}
	if epochs < 3 {
		t.Errorf("expected the gas limit to force multiple epochs, got %d", epochs)
	}
}

// TestDeferredTxsSurviveWithoutMempool: with no admission-controlled
// pool attached, gas-deferred transactions must land back in the
// legacy pending queue — visible through MempoolSize — and commit in a
// later epoch. Regression for silently dropping deferred work when
// WithMempool is absent.
func TestDeferredTxsSurviveWithoutMempool(t *testing.T) {
	net := shard.NewNetwork(shard.WithGasLimits(100, 100))
	deployer := chain.AddrFromUint(999)
	net.CreateUser(deployer, 1<<40)
	owner := chain.AddrFromUint(1)
	net.CreateUser(owner, 1<<40)
	contract, err := net.DeployContract(deployer, contracts.FungibleToken, ftParams(owner), ftQuery())
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for n := uint64(1); n <= 5; n++ {
		ids = append(ids, net.Submit(transferTx(owner, chain.AddrFromUint(100+n), contract, n, 1)))
	}
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deferred == 0 {
		t.Fatal("gas limit deferred nothing; the regression is not exercised")
	}
	if got := net.MempoolSize(); got != stats.Deferred {
		t.Errorf("pending queue holds %d txs, want the %d deferred", got, stats.Deferred)
	}
	for epochs := 0; net.MempoolSize() > 0; epochs++ {
		if _, err := net.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if epochs > 20 {
			t.Fatal("deferred transactions never drained")
		}
	}
	for _, id := range ids {
		if rec := net.Receipt(id); rec == nil || !rec.Success {
			t.Errorf("tx %d: receipt %+v, want committed", id, rec)
		}
	}
}

// TestInterContractCallInDS: a contract-to-contract message chain is
// executed by the DS committee.
func TestInterContractCallInDS(t *testing.T) {
	const routerSrc = `
scilla_version 0

library Router

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract Router
(token : ByStr20)

field forwarded : Uint128 = Uint128 0

transition Forward (to : ByStr20, amount : Uint128)
  zero = Uint128 0;
  m = {_tag : "Transfer"; _recipient : token; _amount : zero; to : to; amount : amount};
  msgs = one_msg m;
  send msgs;
  f <- forwarded;
  one = Uint128 1;
  nf = builtin add f one;
  forwarded := nf
end
`
	net := shard.NewNetwork(shard.WithShards(3))
	deployer := chain.AddrFromUint(999)
	net.CreateUser(deployer, 1<<40)
	owner := chain.AddrFromUint(1)
	net.CreateUser(owner, 1<<40)
	token, err := net.DeployContract(deployer, contracts.FungibleToken, ftParams(owner), nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := net.DeployContract(deployer, routerSrc, map[string]value.Value{
		"token": token.Value(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The router holds no tokens, so we first give it some. The token's
	// balances are keyed by the router's address when it calls
	// Transfer (the router is the _sender of the inner call).
	net.Submit(&chain.Tx{
		Kind: chain.TxCall, From: owner, To: token, Nonce: 1,
		Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
		Transition: "Transfer",
		Args: map[string]value.Value{
			"to": router.Value(), "amount": u128(500),
		},
	})
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	dest := chain.AddrFromUint(77)
	net.CreateUser(dest, 0)
	id := net.Submit(&chain.Tx{
		Kind: chain.TxCall, From: owner, To: router, Nonce: 2,
		Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
		Transition: "Forward",
		Args: map[string]value.Value{
			"to": dest.Value(), "amount": u128(123),
		},
	})
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	rec := net.Receipt(id)
	if rec == nil || !rec.Success {
		t.Fatalf("forward receipt: %+v", rec)
	}
	if rec.Shard != -1 {
		t.Errorf("inter-contract call executed in shard %d, want DS", rec.Shard)
	}
	if got := balanceOf(t, net, token, dest); got != 123 {
		t.Errorf("dest token balance = %d, want 123", got)
	}
	// The router's own state advanced atomically with the inner call.
	c := net.Contracts.Get(router)
	f, err := c.Snapshot().LoadField("forwarded")
	if err != nil {
		t.Fatal(err)
	}
	if f.(value.Int).V.Uint64() != 1 {
		t.Errorf("forwarded = %s, want 1", f)
	}
}

// TestDeltaStatsReported: EpochStats counts merged components, and the
// per-stage timing breakdown arrives through the recorder.
func TestDeltaStatsReported(t *testing.T) {
	col := obs.NewStageCollector()
	net, contract, users := deployFT(t, 3, 5, true, shard.WithRecorder(col))
	for i := 1; i < 5; i++ {
		net.Submit(transferTx(users[0], users[i], contract, uint64(i), 10))
	}
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaEntries == 0 {
		t.Error("no delta entries recorded for sharded transfers")
	}
	sum := col.Last()
	if sum.Merge <= 0 {
		t.Error("merge time not measured")
	}
	if sum.Committed != stats.Committed || sum.DeltaEntries != stats.DeltaEntries {
		t.Errorf("recorder summary %+v disagrees with stats %+v", sum, stats)
	}
	if sum.Wall != stats.WallTime {
		t.Errorf("recorder wall %v != stats wall %v", sum.Wall, stats.WallTime)
	}
}

// TestSplitGasAccounting: with the Sec. 4.2.2 split enabled, a sender
// whose balance barely covers gas cannot overdraw through a non-home
// shard.
func TestSplitGasAccounting(t *testing.T) {
	net := shard.NewNetwork(shard.WithShards(4), shard.WithSplitGasAccounting(true))
	deployer := chain.AddrFromUint(999)
	net.CreateUser(deployer, 1<<40)
	owner := chain.AddrFromUint(1)
	net.CreateUser(owner, 1<<40)
	contract, err := net.DeployContract(deployer, contracts.FungibleToken, ftParams(owner), ftQuery())
	if err != nil {
		t.Fatal(err)
	}
	// A poor user: balance 100. Their per-shard allowance outside the
	// home shard is 100/2/(4-1) = 16, below the 10k gas budget.
	poor := chain.AddrFromUint(5)
	net.CreateUser(poor, 100)
	id := net.Submit(transferTx(poor, owner, contract, 1, 0))
	if _, err := net.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	rec := net.Receipt(id)
	if rec == nil {
		t.Fatal("no receipt")
	}
	if rec.Success {
		t.Error("tx with gas budget above the per-shard allowance committed")
	}
}

// TestParallelShardsEquivalent: goroutine-parallel shard execution
// produces the same state as the sequential max-time simulation.
func TestParallelShardsEquivalent(t *testing.T) {
	run := func(parallel bool) map[chain.Address]uint64 {
		net := shard.NewNetwork(shard.WithShards(4), shard.WithParallelism(parallel))
		deployer := chain.AddrFromUint(999)
		net.CreateUser(deployer, 1<<40)
		users := make([]chain.Address, 10)
		for i := range users {
			users[i] = chain.AddrFromUint(uint64(i + 1))
			net.CreateUser(users[i], 1<<40)
		}
		contract, err := net.DeployContract(deployer, contracts.FungibleToken, ftParams(users[0]), ftQuery())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			from := users[i%10]
			to := users[(i+1)%10]
			net.Submit(transferTx(from, to, contract, uint64(i/10+1), 3))
		}
		for net.MempoolSize() > 0 {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		out := map[chain.Address]uint64{}
		for _, u := range users {
			out[u] = balanceOf(t, net, contract, u)
		}
		return out
	}
	seq, par := run(false), run(true)
	for a, want := range seq {
		if par[a] != want {
			t.Errorf("parallel execution diverged at %s: %d vs %d", a, par[a], want)
		}
	}
}
