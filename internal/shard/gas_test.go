package shard_test

import (
	"fmt"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/shard"
)

// gasBuckets sums committed gas per (epoch, shard) over the given
// transaction ids' receipts.
func gasBuckets(t *testing.T, net *shard.Network, ids []uint64) map[string]uint64 {
	t.Helper()
	buckets := make(map[string]uint64)
	for _, id := range ids {
		rec := net.Receipt(id)
		if rec == nil {
			t.Fatalf("tx %d has no receipt", id)
		}
		buckets[fmt.Sprintf("epoch %d shard %d", rec.Epoch, rec.Shard)] += rec.GasUsed
	}
	return buckets
}

// TestShardBlockNeverExceedsGasLimit is the regression for the
// MicroBlock gas-accounting bug: the old loop admitted a transaction
// whenever gasUsed was merely below the limit, so a block with limit
// 100 could commit ~120 gas. Every (epoch, shard) bucket must now stay
// within ShardGasLimit, with the overflowing transaction deferred.
func TestShardBlockNeverExceedsGasLimit(t *testing.T) {
	const limit = 100
	net, contract, users := deployFT(t, 1, 2, true, shard.WithGasLimits(limit, limit))
	var ids []uint64
	for n := uint64(1); n <= 10; n++ {
		ids = append(ids, net.Submit(transferTx(users[0], users[1], contract, n, 1)))
	}
	for epochs := 0; net.MempoolSize() > 0; epochs++ {
		if _, err := net.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if epochs > 30 {
			t.Fatal("mempool never drained")
		}
	}
	full := 0
	for bucket, gas := range gasBuckets(t, net, ids) {
		if gas > limit {
			t.Errorf("%s committed %d gas, above the %d-gas block limit", bucket, gas, limit)
		}
		if gas > limit/2 {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no block came close to the gas limit; the bound was never exercised")
	}
	for _, id := range ids {
		if rec := net.Receipt(id); !rec.Success {
			t.Errorf("tx %d failed: %s", id, rec.Error)
		}
	}
}

// TestDSBlockNeverExceedsGasLimit: the same bound for the DS
// committee's FinalBlock. An unsharded contract call from a sender on
// a different home shard routes to DS (baseline strategy), so the
// owner's transfers exercise the DS gas loop.
func TestDSBlockNeverExceedsGasLimit(t *testing.T) {
	const limit = 100
	for n := 2; n <= 5; n++ {
		net, contract, users := deployFT(t, n, 2, false, shard.WithGasLimits(1_000_000, limit))
		if chain.ShardOf(users[0], n) == chain.ShardOf(contract, n) {
			continue // owner co-located with the contract: stays in-shard
		}
		var ids []uint64
		for nonce := uint64(1); nonce <= 10; nonce++ {
			ids = append(ids, net.Submit(transferTx(users[0], users[1], contract, nonce, 1)))
		}
		for epochs := 0; net.MempoolSize() > 0; epochs++ {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
			if epochs > 30 {
				t.Fatal("mempool never drained")
			}
		}
		for _, id := range ids {
			rec := net.Receipt(id)
			if rec.Shard != -1 {
				t.Fatalf("tx %d executed on shard %d, want the DS committee", id, rec.Shard)
			}
			if !rec.Success {
				t.Errorf("tx %d failed: %s", id, rec.Error)
			}
		}
		for bucket, gas := range gasBuckets(t, net, ids) {
			if gas > limit {
				t.Errorf("%s committed %d gas, above the %d-gas FinalBlock limit", bucket, gas, limit)
			}
		}
		return
	}
	t.Fatal("no shard count separated the owner from the contract")
}

// TestOversizedCallFailsTerminally: a call that cannot fit even a
// fresh epoch's full gas limit must fail terminally (charged up to the
// block limit) instead of deferring forever.
func TestOversizedCallFailsTerminally(t *testing.T) {
	const limit = 10 // well below one FT transfer's cost
	net, contract, users := deployFT(t, 1, 2, true, shard.WithGasLimits(limit, limit))
	id := net.Submit(transferTx(users[0], users[1], contract, 1, 1))
	stats, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 {
		t.Errorf("epoch stats %+v, want one terminal failure", stats)
	}
	if net.MempoolSize() != 0 {
		t.Errorf("oversized call deferred (%d pending), want terminal rejection", net.MempoolSize())
	}
	rec := net.Receipt(id)
	if rec == nil || rec.Success {
		t.Fatalf("receipt %+v, want terminal failure", rec)
	}
	if rec.GasUsed > limit {
		t.Errorf("terminal failure charged %d gas, above the %d-gas block limit", rec.GasUsed, limit)
	}
}
