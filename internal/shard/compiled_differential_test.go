package shard_test

import (
	"fmt"
	"testing"

	"cosplit/internal/obs"
	"cosplit/internal/shard"
)

// The compiled closure-chain executor must be observationally
// indistinguishable from the AST interpreter in every execution mode:
// identical receipts (success flag, gas, error string, shard, epoch),
// state roots, and per-shard gas totals. The interpreter-driven
// sequential pipeline is the reference; every other (mode × engine)
// combination is compared against it.

// TestCompiledVsInterpretedNetwork drives the five evaluation
// workloads under three stream seeds. For each, the reference run
// forces the interpreter (WithCompiledExecution(false), sequential
// pipeline); the compiled engine is then exercised in all four
// pipeline modes.
func TestCompiledVsInterpretedNetwork(t *testing.T) {
	workloads := []string{
		"FT transfer",        // FungibleToken
		"NFT mint",           // NonfungibleToken
		"CF donate",          // Crowdfunding
		"ProofIPFS register", // ProofIPFS
		"UD bestow",          // UDRegistry
	}
	for _, name := range workloads {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42} {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					interp := runPipeline(t, namedWorkload(t, name, seed), false, 0,
						shard.WithCompiledExecution(false))
					compiledSeq := runPipeline(t, namedWorkload(t, name, seed), false, 0)
					diffResults(t, "compiled-sequential", interp, compiledSeq)
					for _, m := range execModes {
						got := runPipeline(t, namedWorkload(t, name, seed), m.parallel, m.intra)
						diffResults(t, "compiled-"+m.name, interp, got)
					}
				})
			}
		})
	}
}

// TestCompiledEngineActuallyRuns guards against the differential test
// passing vacuously: the compiled run must be served by the fused fast
// path, and the interpreter run must never touch the compiled
// dispatch counters.
func TestCompiledEngineActuallyRuns(t *testing.T) {
	reg := obs.NewRegistry()
	runPipeline(t, namedWorkload(t, "FT transfer", 1), false, 0,
		shard.WithRegistry(reg))
	snap := reg.Snapshot()
	if n := snap.Counters["compile.programs"]; n == 0 {
		t.Error("no programs compiled at deployment")
	}
	if n := snap.Counters["compile.fast_runs"]; n == 0 {
		t.Error("compiled pipeline executed no fused fast-path transitions")
	}
	if n := snap.Counters["compile.fallback_runs"]; n != 0 {
		t.Errorf("compiled pipeline fell back to the interpreter %d times", n)
	}

	regOff := obs.NewRegistry()
	runPipeline(t, namedWorkload(t, "FT transfer", 1), false, 0,
		shard.WithRegistry(regOff), shard.WithCompiledExecution(false))
	snapOff := regOff.Snapshot()
	if n := snapOff.Counters["compile.fast_runs"] + snapOff.Counters["compile.generic_runs"]; n != 0 {
		t.Errorf("interpreter-only pipeline recorded %d compiled dispatches", n)
	}
}
