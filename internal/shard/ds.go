package shard

import (
	"errors"
	"fmt"
	"math/big"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// maxCallDepth bounds inter-contract message chains in the DS
// committee.
const maxCallDepth = 8

// runDS executes the DS committee's queue sequentially on the merged
// canonical state (after the shard deltas were folded in), up to the
// DS gas limit. Unlike shards, the DS committee may process
// inter-contract calls. As in the shard path, the FinalBlock never
// commits past its gas limit: a transaction that cannot fit in the
// remaining epoch gas is deferred (with the rest of the queue) rather
// than allowed to overshoot the cap. The receipts it recorded are also
// returned in execution order so FinalizeEpoch can ship them in a
// FinalBlock.
func (n *Network) runDS(queue []*chain.Tx) (committed, failed int, deferred []*chain.Tx, receipts []*chain.Receipt) {
	var gasUsed uint64
	// The DS committee owns the canonical state during this phase; it
	// works on per-contract mutable copies taken once per epoch and
	// installs them at the end.
	working := make(map[chain.Address]*eval.MemState)
	for i, tx := range queue {
		remaining := n.cfg.DSGasLimit - gasUsed
		if remaining == 0 {
			deferred = append(deferred, queue[i:]...)
			break
		}
		rec, wait := n.executeDS(tx, working, remaining)
		if wait {
			deferred = append(deferred, queue[i:]...)
			break
		}
		rec.Shard = -1
		rec.Epoch = n.Epoch
		gasUsed += rec.GasUsed
		n.record(rec)
		receipts = append(receipts, rec)
		if rec.Success {
			committed++
		} else {
			failed++
		}
	}
	for addr, st := range working {
		n.Contracts.Get(addr).ReplaceState(st)
	}
	return committed, failed, deferred, receipts
}

// workingState returns the DS committee's mutable copy of a contract's
// state, creating it on first touch.
func (n *Network) workingState(working map[chain.Address]*eval.MemState, addr chain.Address) *eval.MemState {
	st, ok := working[addr]
	if !ok {
		st = n.Contracts.Get(addr).Snapshot().Copy()
		working[addr] = st
	}
	return st
}

// executeDS runs one transaction with full (non-sharded) semantics on
// the DS working state, capped by the FinalBlock's remaining epoch
// gas. When the transaction cannot complete within remaining but might
// within a fresh epoch's full limit, executeDS reports wait=true and
// leaves all state — working copies, balances, nonces — untouched so
// the transaction can be deferred and retried.
func (n *Network) executeDS(tx *chain.Tx, working map[chain.Address]*eval.MemState, remaining uint64) (_ *chain.Receipt, wait bool) {
	// As in the shard path: the interpreter burns at most the declared
	// transaction limit, clipped to the epoch budget (a declared limit
	// of 0 means "unlimited" and is clipped too).
	effLimit := tx.GasLimit
	epochCapped := false
	if effLimit == 0 || effLimit > remaining {
		effLimit = remaining
		epochCapped = true
	}
	rec := &chain.Receipt{TxID: tx.ID}
	delta := chain.NewAccountDelta()

	gasCost := func(used uint64) *big.Int {
		return new(big.Int).Mul(new(big.Int).SetUint64(used), new(big.Int).SetUint64(tx.GasPrice))
	}
	senderAcc := n.Accounts.Get(tx.From)
	if senderAcc == nil {
		rec.Error = "unknown sender"
		return rec, false
	}
	if senderAcc.Balance.Cmp(tx.GasBudget()) < 0 {
		rec.Error = "insufficient balance for gas"
		return rec, false
	}

	switch tx.Kind {
	case chain.TxTransfer:
		total := new(big.Int).Add(tx.Amount, tx.GasBudget())
		if senderAcc.Balance.Cmp(total) < 0 {
			rec.Error = "insufficient balance"
			return rec, false
		}
		rec.GasUsed = 1
		delta.AddBalance(tx.From, new(big.Int).Neg(new(big.Int).Add(tx.Amount, gasCost(rec.GasUsed))))
		delta.AddBalance(tx.To, tx.Amount)
		delta.BumpNonce(tx.From, tx.Nonce)
		if err := n.Accounts.Apply(delta); err != nil {
			rec.Error = err.Error()
			return rec, false
		}
		n.touchAccountDelta(delta)
		rec.Success = true
		return rec, false
	case chain.TxCall:
		// Execute against per-contract overlays over the working state;
		// commit everything atomically on success.
		overlays := make(map[chain.Address]*chain.Overlay)
		events, gas, err := n.dsCall(tx.From, tx.From, tx.To, tx.Transition, tx.Args,
			tx.Amount, effLimit, 0, overlays, delta, working)
		if effLimit > 0 && gas > effLimit {
			// The interpreter's gas check runs after each charge, so a
			// failing call chain can overshoot by one operation; the
			// FinalBlock accounting must never see more than the
			// effective limit.
			gas = effLimit
		}
		var oog *eval.OutOfGasError
		if epochCapped && errors.As(err, &oog) && remaining < n.cfg.DSGasLimit {
			// Out of the epoch's residual gas, not the transaction's own
			// budget: defer to a fresh epoch without charging anything.
			return nil, true
		}
		rec.GasUsed = gas
		delta.AddBalance(tx.From, new(big.Int).Neg(gasCost(gas)))
		delta.BumpNonce(tx.From, tx.Nonce)
		if err != nil {
			// Gas and nonce are still charged.
			d2 := chain.NewAccountDelta()
			d2.AddBalance(tx.From, new(big.Int).Neg(gasCost(gas)))
			d2.BumpNonce(tx.From, tx.Nonce)
			if aerr := n.Accounts.Apply(d2); aerr != nil {
				rec.Error = aerr.Error()
				return rec, false
			}
			n.touchAccountDelta(d2)
			rec.Error = err.Error()
			return rec, false
		}
		if err := n.Accounts.Apply(delta); err != nil {
			rec.Error = err.Error()
			return rec, false
		}
		n.touchAccountDelta(delta)
		// Commit contract state changes into the working copies (which
		// runDS installs as canonical), re-committing each written
		// component in the root trie.
		for addr, ov := range overlays {
			if !ov.Touched() {
				continue
			}
			st := n.workingState(working, addr)
			if err := ov.ApplyTo(st); err != nil {
				rec.Error = err.Error()
				return rec, false
			}
			n.touchOverlay(addr, ov, st)
		}
		rec.Success = true
		rec.Events = events
		return rec, false
	default:
		rec.Error = "unsupported transaction kind"
		return rec, false
	}
}

// dsCall executes one (possibly nested) contract call, following
// emitted messages to other contracts up to maxCallDepth.
func (n *Network) dsCall(origin, sender, to chain.Address, transition string,
	args map[string]value.Value, amount *big.Int, gasLimit uint64, depth int,
	overlays map[chain.Address]*chain.Overlay, delta *chain.AccountDelta,
	working map[chain.Address]*eval.MemState) ([]value.Msg, uint64, error) {

	if depth > maxCallDepth {
		return nil, 0, ErrCallDepthExceeded
	}
	c := n.Contracts.Get(to)
	if c == nil {
		return nil, 0, fmt.Errorf("%w %s", ErrUnknownContract, to)
	}
	ov, ok := overlays[to]
	if !ok {
		ov = chain.NewOverlay(n.workingState(working, to), c.Checked.FieldTypes)
		overlays[to] = ov
	}
	bal := big.NewInt(0)
	if acc := n.Accounts.Get(to); acc != nil {
		bal.Set(acc.Balance)
	}
	ctx := &eval.Context{
		Sender:          sender.Value(),
		Origin:          origin.Value(),
		Amount:          value.Int{Ty: ast.TyUint128, V: amount},
		BlockNumber:     new(big.Int).SetUint64(n.BlockNumber),
		State:           ov,
		GasLimit:        gasLimit,
		ContractBalance: bal,
	}
	res, err := runTransition(&n.cfg, c, ctx, transition, args)
	if err != nil {
		return nil, ctx.GasUsed, err
	}
	gas := ctx.GasUsed
	if res.Accepted && amount.Sign() > 0 {
		delta.AddBalance(sender, new(big.Int).Neg(amount))
		delta.AddBalance(to, amount)
	}
	events := res.Events
	for _, m := range res.Messages {
		rcp, ok := m.Entries["_recipient"]
		if !ok {
			return nil, gas, fmt.Errorf("%w: message without _recipient", ErrMalformedMessage)
		}
		addr, ok := chain.AddressFromValue(rcp)
		if !ok {
			return nil, gas, fmt.Errorf("%w: malformed _recipient", ErrMalformedMessage)
		}
		var msgAmount big.Int
		if amt, ok := m.Entries["_amount"]; ok {
			iv, ok := amt.(value.Int)
			if !ok {
				return nil, gas, fmt.Errorf("%w: malformed _amount", ErrMalformedMessage)
			}
			msgAmount.Set(iv.V)
		}
		if n.Accounts.IsContract(addr) {
			tag, ok := m.Entries["_tag"].(value.Str)
			if !ok {
				return nil, gas, fmt.Errorf("%w: contract call without _tag", ErrMalformedMessage)
			}
			callArgs := make(map[string]value.Value)
			for k, v := range m.Entries {
				if k == "_tag" || k == "_recipient" || k == "_amount" {
					continue
				}
				callArgs[k] = v
			}
			rem := uint64(0)
			if gasLimit > gas {
				rem = gasLimit - gas
			}
			subEvents, subGas, err := n.dsCall(origin, to, addr, tag.S, callArgs,
				new(big.Int).Set(&msgAmount), rem, depth+1, overlays, delta, working)
			gas += subGas
			if err != nil {
				return nil, gas, err
			}
			events = append(events, subEvents...)
		} else if msgAmount.Sign() > 0 {
			delta.AddBalance(to, new(big.Int).Neg(&msgAmount))
			delta.AddBalance(addr, &msgAmount)
		}
	}
	return events, gas, nil
}
