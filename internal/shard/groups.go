package shard

import (
	"bytes"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/dispatch"
)

// Intra-shard parallel execution (Config.IntraShardWorkers): the epoch
// batch of one shard is partitioned into conflict groups by the
// transactions' dispatch-derived footprints, groups execute
// concurrently against private overlays over the shared epoch-start
// snapshot, and the results are folded back in submission/group order
// through the per-field joins — producing a MicroBlock bit-identical
// to the sequential path.
//
// Grouping rule, per footprint key (a native account, a whole contract
// field, or one map entry):
//   - An exclusive access (anything that observes the component, or
//     writes it non-additively) unions its transaction with every other
//     toucher of the key. Within a group, members keep submission
//     order, so same-key read/write sequences replay exactly as the
//     sequential executor would.
//   - An additive access (a blind native-balance credit) unions only
//     with exclusive touchers of the key. Credits commute with each
//     other — AccountDelta.AddBalance sums — so two transactions whose
//     only overlap is crediting the same account stay in separate
//     groups.
//
// Commutative contract-state writes (IntMerge) are exclusive here even
// though the cross-shard dispatcher lets them proceed without
// ownership: the written value derives from the locally observed one
// (read-add-write, with branch- and overflow-dependent gas), so only
// writers of distinct components commute bit-identically.

// fpPart holds one worker's share of the footprint phase: the accesses
// of a contiguous range of the queue, with offs[i] indexing the range's
// i-th transaction into flat.
type fpPart struct {
	flat   []dispatch.FootprintAccess
	offs   []int
	wholes map[fieldKey]bool
	ok     bool
}

type fieldKey struct {
	contract chain.Address
	field    string
}

// groupQueue partitions queue into conflict groups. Each group is a
// list of queue indices in submission order; groups are ordered by
// their first member. ok is false when any transaction's footprint is
// statically unknown (no signature, ⊥ transition, unresolvable keys) —
// the batch must then run sequentially.
//
// Footprint resolution is per-transaction independent, so it fans out
// over the modeled workers (contiguous ranges, host goroutines bounded
// by GOMAXPROCS); only the union-find that follows is sequential. The
// returned prep duration models what the configured worker count pays:
// the slowest footprint part plus the sequential grouping.
func (n *Network) groupQueue(queue []*chain.Tx, workers int) ([][]int, time.Duration, bool) {
	if workers > len(queue) {
		workers = len(queue)
	}
	parts := make([]fpPart, workers)
	partTimes := make([]time.Duration, workers)
	per := (len(queue) + workers - 1) / workers
	gmax := workers
	if p := runtime.GOMAXPROCS(0); p < gmax {
		gmax = p
	}
	var next atomic.Int64
	claim := func() {
		for {
			pi := int(next.Add(1)) - 1
			if pi >= workers {
				return
			}
			fillPart(n, queue, pi*per, per, &parts[pi], &partTimes[pi])
		}
	}
	var wg sync.WaitGroup
	for k := 1; k < gmax; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			claim()
		}()
	}
	claim()
	wg.Wait()
	var fpMax time.Duration
	var wholes map[fieldKey]bool
	for pi := range parts {
		if !parts[pi].ok {
			return nil, 0, false
		}
		if partTimes[pi] > fpMax {
			fpMax = partTimes[pi]
		}
		for k := range parts[pi].wholes {
			if wholes == nil {
				wholes = make(map[fieldKey]bool)
			}
			wholes[k] = true
		}
	}

	seqStart := time.Now()
	// Wide-field promotion: a whole-field access conflicts with every
	// entry of the field, so all of that field's accesses collapse to
	// the field-level key.
	if len(wholes) > 0 {
		for pi := range parts {
			flat := parts[pi].flat
			for idx := range flat {
				a := &flat[idx]
				if a.Key.Field != "" && wholes[fieldKey{a.Key.Contract, a.Key.Field}] {
					a.Key.Entry = ""
				}
			}
		}
	}

	// Union-find over queue indices.
	parent := make([]int, len(queue))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	type keyState struct {
		anchor  int   // first exclusive toucher, -1 while none seen
		pending []int // additive touchers seen before any anchor
	}
	states := make(map[dispatch.FootprintKey]*keyState, 3*len(queue))
	for i := range queue {
		p := &parts[i/per]
		li := i % per
		for _, a := range p.flat[p.offs[li]:p.offs[li+1]] {
			ks := states[a.Key]
			if ks == nil {
				ks = &keyState{anchor: -1}
				states[a.Key] = ks
			}
			if a.Additive {
				if ks.anchor >= 0 {
					union(i, ks.anchor)
				} else {
					ks.pending = append(ks.pending, i)
				}
				continue
			}
			if ks.anchor < 0 {
				ks.anchor = i
				for _, p := range ks.pending {
					union(p, i)
				}
				ks.pending = nil
			} else {
				union(i, ks.anchor)
			}
		}
	}

	order := make(map[int]int)
	var groups [][]int
	for i := range queue {
		r := find(i)
		gi, ok := order[r]
		if !ok {
			gi = len(groups)
			order[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups, fpMax + time.Since(seqStart), true
}

// fillPart resolves the footprints of queue[start:start+count] into
// one worker's fpPart, recording the part's host time.
func fillPart(n *Network, queue []*chain.Tx, start, count int, part *fpPart, took *time.Duration) {
	t0 := time.Now()
	if start >= len(queue) {
		part.ok = true
		return
	}
	end := start + count
	if end > len(queue) {
		end = len(queue)
	}
	part.flat = make([]dispatch.FootprintAccess, 0, 3*(end-start))
	part.offs = make([]int, 1, end-start+1)
	var scratch []dispatch.FootprintAccess // Footprint resets its buffer per call
	for _, tx := range queue[start:end] {
		var ok bool
		scratch, ok = n.Disp.Footprint(tx, scratch)
		if !ok {
			*took = time.Since(t0)
			return
		}
		part.flat = append(part.flat, scratch...)
		part.offs = append(part.offs, len(part.flat))
		for _, a := range scratch {
			if a.Key.Field != "" && a.Key.Entry == "" {
				if part.wholes == nil {
					part.wholes = make(map[fieldKey]bool)
				}
				part.wholes[fieldKey{a.Key.Contract, a.Key.Field}] = true
			}
		}
	}
	part.ok = true
	*took = time.Since(t0)
}

// assignGroups statically distributes conflict groups over `workers`
// runs: groups sorted by descending member count (ties by group index)
// are placed largest-first on the least-loaded run, member count
// standing in for cost. The assignment is a deterministic function of
// the grouping — unlike dynamic work-stealing, it fixes which
// transactions share a run's overlays, and LPT placement keeps one
// oversized residue group from dragging singletons along with it.
func assignGroups(groups [][]int, workers int) [][]int {
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(groups[order[a]]) > len(groups[order[b]])
	})
	assign := make([][]int, workers)
	loads := make([]int, workers)
	for _, gi := range order {
		wi := 0
		for j := 1; j < workers; j++ {
			if loads[j] < loads[wi] {
				wi = j
			}
		}
		assign[wi] = append(assign[wi], gi)
		loads[wi] += len(groups[gi])
	}
	return assign
}

// runShardGrouped attempts the intra-shard parallel path for one
// shard's batch. A nil MicroBlock (with nil error) means the batch must
// take the sequential path instead: intra-shard parallelism disabled,
// trivial batch, opaque footprints, a single conflict group, a shard
// gas-limit trip (the deferral cut is a global prefix property the
// group results cannot reproduce), or a join conflict in the fold
// (grouping invariant violation — never expected, handled defensively).
func (n *Network) runShardGrouped(s int, queue []*chain.Tx) (*MicroBlock, error) {
	if n.cfg.IntraShardWorkers <= 1 || len(queue) <= 1 {
		return nil, nil
	}
	if n.cfg.OverflowGuard && n.cfg.NumShards > 1 {
		// The Sec. 6 guard bounds each transaction's *cumulative shard*
		// IntMerge delta; group-local overlays cannot observe other
		// groups' deltas, so the verdict could diverge from sequential.
		return nil, nil
	}
	groups, prepTime, ok := n.groupQueue(queue, n.cfg.IntraShardWorkers)
	if !ok || len(groups) <= 1 {
		n.m.groupFallbacks.Inc()
		return nil, nil
	}
	largest, residue := 0, 0
	for _, g := range groups {
		if len(g) > largest {
			largest = len(g)
		}
		if len(g) > 1 {
			residue += len(g)
		}
	}
	n.m.groups.Observe(int64(len(groups)))
	n.m.groupSize.Observe(int64(largest))
	n.m.groupResidue.Observe(int64(residue))
	n.rec.ShardGroupsFormed(n.Epoch, s, len(groups), largest, residue)

	// Execute on one shardRun per *modeled* worker. Each run owns a
	// deterministic set of groups (assignGroups) and overlays over the
	// shared epoch-start snapshot: a run's groups execute back-to-back,
	// and because every observable component (an exclusive footprint
	// key) is confined to a single group, a group never sees a
	// co-resident group's writes. Each run also extracts its own state
	// deltas inside its timed span, so extraction — a real part of
	// sealing the MicroBlock — parallelises with execution instead of
	// serialising in the fold. Host goroutines (bounded by GOMAXPROCS)
	// claim whole runs; the per-run times model what the configured
	// worker count would pay regardless of how few actually ran at
	// once. Receipts land in a flat per-transaction slice (disjoint
	// indices, safe concurrently).
	workers := n.cfg.IntraShardWorkers
	if len(groups) < workers {
		workers = len(groups)
	}
	assign := assignGroups(groups, workers)
	runs := make([]*shardRun, workers)
	runDeltas := make([][]*chain.StateDelta, workers)
	runErrs := make([]error, workers)
	runTimes := make([]time.Duration, workers)
	recs := make([]*chain.Receipt, len(queue))
	execRun := func(wi int) {
		start := time.Now()
		run := n.newShardRun(s)
		runs[wi] = run
		for _, gi := range assign[wi] {
			for _, ti := range groups[gi] {
				// Workers run under the transactions' own gas limits; the
				// fold below re-checks the MicroBlock budget and falls back
				// to the sequential path when a receipt no longer fits.
				recs[ti], _ = run.execute(queue[ti], 0)
			}
		}
		runDeltas[wi], runErrs[wi] = run.extractDeltas()
		runTimes[wi] = time.Since(start)
	}
	gmax := workers
	if p := runtime.GOMAXPROCS(0); p < gmax {
		gmax = p
	}
	if gmax <= 1 {
		for wi := 0; wi < workers; wi++ {
			execRun(wi)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < gmax; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					wi := int(next.Add(1)) - 1
					if wi >= workers {
						return
					}
					execRun(wi)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range runErrs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic fold: receipts in submission order with the same
	// gas-limit pre-check the sequential loop applies, account deltas
	// over the worker runs in run order (AccountDelta.Merge is
	// commutative regardless), and per-contract state deltas joined
	// pairwise over contracts sorted by address — each observable
	// component lives in exactly one group and hence one run, so the
	// join never sees two writes to the same component.
	foldStart := time.Now()
	mb := &MicroBlock{Shard: s, Epoch: n.Epoch, Accounts: chain.NewAccountDelta()}
	for i := range queue {
		// Fall back to the sequential path as soon as a receipt would
		// not fit in the MicroBlock's remaining gas: the sequential loop
		// owns the defer-or-fail semantics for epoch-capped transactions,
		// and rerunning under it reproduces these receipts bit-for-bit
		// (each committed receipt's gas fits the budget the sequential
		// executor would have offered it).
		remaining := n.cfg.ShardGasLimit - mb.GasUsed
		rec := recs[i]
		if remaining == 0 || rec.GasUsed > remaining {
			n.m.groupFallbacks.Inc()
			return nil, nil
		}
		rec.Shard = s
		rec.Epoch = n.Epoch
		mb.Receipts = append(mb.Receipts, rec)
		mb.GasUsed += rec.GasUsed
	}
	for _, run := range runs {
		mb.Accounts.Merge(run.accDelta)
	}

	perContract := make(map[chain.Address][]*chain.StateDelta)
	var addrs []chain.Address
	for _, ds := range runDeltas {
		for _, d := range ds {
			if _, seen := perContract[d.Contract]; !seen {
				addrs = append(addrs, d.Contract)
			}
			perContract[d.Contract] = append(perContract[d.Contract], d)
		}
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	for _, addr := range addrs {
		ds := perContract[addr]
		if len(ds) == 1 {
			mb.Deltas = append(mb.Deltas, ds[0])
			continue
		}
		merged, err := chain.MergeCommutative(ds)
		if err != nil {
			n.m.groupFallbacks.Inc()
			return nil, nil
		}
		mb.Deltas = append(mb.Deltas, merged)
	}
	fold := time.Since(foldStart)
	n.m.foldTime.ObserveDuration(fold)
	n.rec.GroupFoldDone(n.Epoch, s, len(addrs), fold)

	// The modelled execute stage: the grouping prepass (its footprint
	// phase already modelled as the slowest part), the slowest modelled
	// worker's run (execution plus its own delta extraction), and the
	// (sequential) fold. The host may have run fewer goroutines; the
	// per-run times are host-measured either way.
	var makespan time.Duration
	for _, rt := range runTimes {
		if rt > makespan {
			makespan = rt
		}
	}
	mb.ExecTime = prepTime + makespan + fold
	return mb, nil
}
