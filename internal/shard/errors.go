package shard

import "errors"

// Sentinel errors for the shard pipeline. Error returns from the
// package wrap these with %w, so callers branch with errors.Is instead
// of matching message strings; in-shard receipts carry the matching
// message in Receipt.Error.
var (
	// ErrUnknownDeployer rejects a deployment from an address with no
	// account.
	ErrUnknownDeployer = errors.New("unknown deployer")
	// ErrUnknownContract rejects a call to an address with no deployed
	// contract.
	ErrUnknownContract = errors.New("unknown contract")
	// ErrGasExhausted rejects a transaction whose gas budget exceeds
	// the sender's per-shard allowance under split gas accounting
	// (Sec. 4.2.2).
	ErrGasExhausted = errors.New("per-shard gas allowance exceeded")
	// ErrOverflowGuard rejects a commutative write whose cumulative
	// in-shard delta exceeds the Sec. 6 conservative overflow bound.
	ErrOverflowGuard = errors.New("conservative overflow guard tripped")
	// ErrInsufficientBalance rejects a transfer or send not covered by
	// the (shard-local view of the) sender's balance.
	ErrInsufficientBalance = errors.New("insufficient balance")
	// ErrMalformedMessage rejects a contract-emitted message without a
	// well-formed _recipient/_amount/_tag entry.
	ErrMalformedMessage = errors.New("malformed message")
	// ErrContractRecipient rejects an in-shard message addressed to a
	// contract (shards may only send to users; contract recipients are
	// filtered at dispatch).
	ErrContractRecipient = errors.New("in-shard message to a contract")
	// ErrCallDepthExceeded aborts a DS-committee message chain nested
	// deeper than maxCallDepth.
	ErrCallDepthExceeded = errors.New("call depth exceeded")
	// ErrEpochSkew rejects a FinalBlock applied to a replica that is
	// not at the block's epoch.
	ErrEpochSkew = errors.New("final block epoch skew")
	// ErrStateDivergence rejects a FinalBlock whose state root
	// disagrees with the replica's after replay.
	ErrStateDivergence = errors.New("replica state root diverged from final block")
)
