package shard_test

import (
	"math/big"
	"strings"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

// TestOverflowGuard reproduces the Sec. 6 scenario: individually
// in-range commutative writes whose joined deltas could overflow are
// conservatively rejected in-shard when the guard is enabled.
func TestOverflowGuard(t *testing.T) {
	run := func(guard bool, mintAmount *big.Int) *chain.Receipt {
		net := shard.NewNetwork(shard.WithShards(3), shard.WithOverflowGuard(guard))
		deployer := chain.AddrFromUint(999)
		net.CreateUser(deployer, 1<<50)
		owner := chain.AddrFromUint(1)
		net.CreateUser(owner, 1<<50)

		// total_supply starts half way to Uint128 max; the headroom per
		// shard under the guard is (MAX - v0)/3.
		half := new(big.Int).Rsh(ast.MaxInt(ast.TyUint128), 1)
		contract, err := net.DeployContract(deployer, contracts.FungibleToken, map[string]value.Value{
			"contract_owner": owner.Value(),
			"token_name":     value.Str{S: "T"},
			"token_symbol":   value.Str{S: "T"},
			"decimals":       value.Uint32V(6),
			"init_supply":    value.Int{Ty: ast.TyUint128, V: half},
		}, &signature.Query{
			Transitions: []string{"Mint", "Transfer", "TransferFrom"},
			WeakReads:   []string{"balances", "allowances"},
		})
		if err != nil {
			t.Fatal(err)
		}
		id := net.Submit(&chain.Tx{
			Kind: chain.TxCall, From: owner, To: contract, Nonce: 1,
			Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
			Transition: "Mint",
			Args: map[string]value.Value{
				"recipient": chain.AddrFromUint(50).Value(),
				"amount":    value.Int{Ty: ast.TyUint128, V: mintAmount},
			},
		})
		if _, err := net.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		return net.Receipt(id)
	}

	// A mint exceeding (MAX - v0)/3 but individually in range: the
	// guard must reject it; without the guard it commits.
	tooBig := new(big.Int).Rsh(ast.MaxInt(ast.TyUint128), 2) // MAX/4 > (MAX/2)/3
	rec := run(true, tooBig)
	if rec == nil || rec.Success {
		t.Fatalf("guarded oversized mint committed: %+v", rec)
	}
	if !strings.Contains(rec.Error, "overflow guard") {
		t.Errorf("unexpected rejection reason: %s", rec.Error)
	}
	if rec2 := run(false, tooBig); rec2 == nil || !rec2.Success {
		t.Fatalf("unguarded mint should commit (merge of one delta stays in range): %+v", rec2)
	}

	// A small mint passes with the guard on.
	if rec3 := run(true, big.NewInt(1000)); rec3 == nil || !rec3.Success {
		t.Fatalf("guarded small mint rejected: %+v", rec3)
	}
}
