package shard

import (
	"cosplit/internal/chain"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// runTransition dispatches one transition call through the contract's
// compiled closure-chain program when compiled execution is enabled
// (the default), and through the AST-walking interpreter otherwise.
// Both engines are bit-identical in results, gas accounting, error
// behaviour and state effects, so every execution mode — sequential,
// parallel shards, intra-shard groups, DS — can switch freely.
func runTransition(cfg *Config, c *chain.Contract, ctx *eval.Context, transition string, args map[string]value.Value) (eval.Result, error) {
	if cfg.CompiledExecution && c.Compiled != nil {
		return c.Compiled.Run(ctx, transition, args)
	}
	r, err := c.Interp.Run(ctx, transition, args)
	if err != nil {
		return eval.Result{}, err
	}
	return *r, nil
}
