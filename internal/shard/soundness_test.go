package shard_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

// fieldFingerprint renders a contract field deterministically for
// cross-run comparison.
func fieldFingerprint(t *testing.T, net *shard.Network, contract chain.Address, field string) string {
	t.Helper()
	c := net.Contracts.Get(contract)
	v, err := c.Snapshot().LoadField(field)
	if err != nil {
		t.Fatalf("LoadField(%s): %v", field, err)
	}
	return v.String()
}

func u256v(v uint64) value.Int {
	return value.Int{Ty: ast.TyUint256, V: new(big.Int).SetUint64(v)}
}

// TestNFTShardedMatchesSequential: a random mint+transfer batch over
// the NFT contract yields the same token_owners / owned_count /
// total_tokens state at 1 and 4 shards.
func TestNFTShardedMatchesSequential(t *testing.T) {
	const nUsers = 12
	const nTokens = 40
	rng := rand.New(rand.NewSource(11))

	type xfer struct{ token, newOwner int }
	var transfers []xfer
	for i := 0; i < 60; i++ {
		transfers = append(transfers, xfer{token: rng.Intn(nTokens) + 1, newOwner: rng.Intn(nUsers)})
	}

	run := func(numShards int) map[string]string {
		net := shard.NewNetwork(shard.WithShards(numShards))
		deployer := chain.AddrFromUint(999)
		net.CreateUser(deployer, 1<<50)
		minter := chain.AddrFromUint(1)
		net.CreateUser(minter, 1<<50)
		users := make([]chain.Address, nUsers)
		for i := range users {
			users[i] = chain.AddrFromUint(uint64(100 + i))
			net.CreateUser(users[i], 1<<40)
		}
		contract, err := net.DeployContract(deployer, contracts.NonfungibleToken, map[string]value.Value{
			"contract_owner": minter.Value(),
			"name":           value.Str{S: "N"},
			"symbol":         value.Str{S: "N"},
		}, &signature.Query{
			Transitions: []string{"Mint", "Transfer"},
			WeakReads:   []string{"owned_count", "total_tokens"},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Mint tokens 1..nTokens to users round-robin, then settle.
		for i := 1; i <= nTokens; i++ {
			net.Submit(&chain.Tx{
				Kind: chain.TxCall, From: minter, To: contract, Nonce: uint64(i),
				Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
				Transition: "Mint",
				Args: map[string]value.Value{
					"to": users[i%nUsers].Value(), "token_id": u256v(uint64(i)),
				},
			})
		}
		for net.MempoolSize() > 0 {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		// Apply the transfer schedule, tracking owners client-side;
		// each epoch carries at most one transfer per token so the CAS
		// owner parameter is always current.
		owner := make([]int, nTokens+1)
		for i := 1; i <= nTokens; i++ {
			owner[i] = i % nUsers
		}
		nonces := map[chain.Address]uint64{minter: uint64(nTokens)}
		i := 0
		for i < len(transfers) {
			seen := map[int]bool{}
			for i < len(transfers) && !seen[transfers[i].token] {
				x := transfers[i]
				seen[x.token] = true
				from := users[owner[x.token]]
				nonces[from]++
				net.Submit(&chain.Tx{
					Kind: chain.TxCall, From: from, To: contract, Nonce: nonces[from],
					Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
					Transition: "Transfer",
					Args: map[string]value.Value{
						"to":          users[x.newOwner].Value(),
						"token_id":    u256v(uint64(x.token)),
						"token_owner": from.Value(),
					},
				})
				owner[x.token] = x.newOwner
				i++
			}
			for net.MempoolSize() > 0 {
				if _, err := net.RunEpoch(); err != nil {
					t.Fatal(err)
				}
			}
		}
		out := map[string]string{}
		for _, f := range []string{"token_owners", "owned_count", "total_tokens"} {
			out[f] = fieldFingerprint(t, net, contract, f)
		}
		return out
	}

	sequential := run(1)
	sharded := run(4)
	for f, want := range sequential {
		if sharded[f] != want {
			t.Errorf("field %s diverged:\n 1 shard: %s\n 4 shards: %s", f, want, sharded[f])
		}
	}
}

// TestUDShardedMatchesSequential: bestow + configure batches.
func TestUDShardedMatchesSequential(t *testing.T) {
	const nDomains = 30
	const nUsers = 10
	rng := rand.New(rand.NewSource(5))

	type cfg struct {
		domain int
		key    string
		val    string
	}
	var cfgs []cfg
	for i := 0; i < 80; i++ {
		cfgs = append(cfgs, cfg{
			domain: rng.Intn(nDomains) + 1,
			key:    fmt.Sprintf("k%d", rng.Intn(3)),
			val:    fmt.Sprintf("v%d", i),
		})
	}

	node := func(i int) value.ByStr {
		b := make([]byte, 32)
		b[31] = byte(i)
		b[30] = byte(i >> 8)
		return value.ByStr{Ty: ast.TyByStr32, B: b}
	}

	run := func(numShards int) string {
		net := shard.NewNetwork(shard.WithShards(numShards))
		deployer := chain.AddrFromUint(999)
		net.CreateUser(deployer, 1<<50)
		admin := chain.AddrFromUint(1)
		net.CreateUser(admin, 1<<50)
		users := make([]chain.Address, nUsers)
		for i := range users {
			users[i] = chain.AddrFromUint(uint64(100 + i))
			net.CreateUser(users[i], 1<<40)
		}
		contract, err := net.DeployContract(deployer, contracts.UDRegistry, map[string]value.Value{
			"registry_owner": admin.Value(),
		}, &signature.Query{
			Transitions: []string{"Bestow", "Configure", "ConfigureResolver"},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= nDomains; i++ {
			net.Submit(&chain.Tx{
				Kind: chain.TxCall, From: admin, To: contract, Nonce: uint64(i),
				Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
				Transition: "Bestow",
				Args: map[string]value.Value{
					"node": node(i), "owner": users[i%nUsers].Value(),
				},
			})
		}
		for net.MempoolSize() > 0 {
			if _, err := net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		// Same-domain configures are ordered within a shard (keyed by
		// node); different domains commute. Last-writer-wins per key is
		// deterministic because each epoch carries at most one write
		// per (domain, key).
		nonces := map[chain.Address]uint64{}
		i := 0
		for i < len(cfgs) {
			seen := map[string]bool{}
			for i < len(cfgs) {
				c := cfgs[i]
				slot := fmt.Sprintf("%d/%s", c.domain, c.key)
				if seen[slot] {
					break
				}
				seen[slot] = true
				who := users[c.domain%nUsers]
				nonces[who]++
				net.Submit(&chain.Tx{
					Kind: chain.TxCall, From: who, To: contract, Nonce: nonces[who],
					Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
					Transition: "Configure",
					Args: map[string]value.Value{
						"node":  node(c.domain),
						"owner": who.Value(),
						"key":   value.Str{S: c.key},
						"val":   value.Str{S: c.val},
					},
				})
				i++
			}
			for net.MempoolSize() > 0 {
				if _, err := net.RunEpoch(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return fieldFingerprint(t, net, contract, "record_data") +
			fieldFingerprint(t, net, contract, "records")
	}

	if a, b := run(1), run(5); a != b {
		t.Errorf("UD registry state diverged between 1 and 5 shards:\n%s\n---\n%s", a, b)
	}
}
