package shard

import (
	"cosplit/internal/chain"
	"cosplit/internal/fault"
	"cosplit/internal/mempool"
	"cosplit/internal/obs"
)

// Config is the network's resolved configuration, readable through
// Network.Config. Networks are constructed with NewNetwork and
// functional options (WithShards, WithGasLimits, WithParallelism,
// ...); code outside this package never builds Config values.
type Config struct {
	NumShards     int
	NodesPerShard int
	// ShardGasLimit caps the gas a shard commits per epoch; DSGasLimit
	// caps the DS committee. These mirror Zilliqa's per-MicroBlock and
	// per-FinalBlock gas limits.
	ShardGasLimit uint64
	DSGasLimit    uint64
	// SplitGasAccounting enables the Sec. 4.2.2 per-shard gas budgets.
	SplitGasAccounting bool
	// ModelConsensus adds the PBFT timing model to epoch wall time.
	ModelConsensus bool
	// ParallelShards executes shard queues on a worker pool bounded by
	// GOMAXPROCS, and dispatches the mempool packet concurrently. The
	// results are bit-identical to the sequential mode: MicroBlocks
	// land in a slice indexed by shard, dispatch placement is committed
	// in submission order, and the DS merge folds deltas in shard order
	// over contracts sorted by address, so no outcome depends on
	// goroutine completion order. The default (false) executes shard
	// queues back-to-back; either way the modelled epoch time charges
	// the maximum per-shard execution time (shards are distinct
	// machines in the real network) and EpochStats reports the host
	// wall-clock alongside it.
	ParallelShards bool
	// IntraShardWorkers > 1 enables intra-shard parallel execution: each
	// shard's epoch batch is partitioned into conflict groups by the
	// transactions' dispatch-derived footprints (owned keypaths,
	// commutative writes, native-balance credits); groups execute
	// concurrently against private overlays snapshotted from the shard
	// view and are folded back in fixed group order through the
	// per-field joins (chain.MergeCommutative), so MicroBlocks, deltas
	// and the state root are bit-identical to sequential execution.
	// Batches containing footprint-opaque transactions (no signature,
	// unresolvable keys, ⊥ transitions) fall back to the sequential
	// path, as does any batch that trips the shard gas limit. The value
	// sets the modelled worker count for the execute-stage timing; the
	// actual goroutine count is additionally bounded by GOMAXPROCS.
	IntraShardWorkers int
	// OverflowGuard enables the Sec. 6 conservative integer-overflow
	// check: a shard rejects a transaction whose cumulative IntMerge
	// delta on any component exceeds ⌊(MAX_INT − v₀)/N⌋ (or the
	// symmetric bound below zero), guaranteeing the joined deltas of N
	// shards cannot overflow at merge time.
	OverflowGuard bool
	// CompiledExecution serves transition calls from the contract's
	// closure-chain compiled program (built once at deployment) instead
	// of the AST-walking interpreter. Results are bit-identical — gas,
	// receipts, deltas, state roots — in every execution mode;
	// transitions the compiler cannot lower transparently fall back to
	// the interpreter per call. On by default.
	CompiledExecution bool
	// FaultEscalation is the unavailability-backoff bound: after this
	// many consecutive epochs of losing a shard's MicroBlock (crash,
	// drop, corrupt), the dispatcher stops routing to the shard and its
	// traffic escalates to DS execution until the shard seals a healthy
	// block again. Only consulted when a fault plan is attached.
	FaultEscalation int
}

// DefaultConfig mirrors the paper's experimental setup: 5 nodes per
// shard, mainnet-like gas limits. NewNetwork(WithShards(n)) applies
// the same defaults.
func DefaultConfig(numShards int) Config {
	return Config{
		NumShards:          numShards,
		NodesPerShard:      5,
		ShardGasLimit:      2_000_000,
		DSGasLimit:         2_000_000,
		SplitGasAccounting: true,
		ModelConsensus:     true,
		CompiledExecution:  true,
		FaultEscalation:    3,
	}
}

// settings is the resolved form of a NewNetwork option list.
type settings struct {
	cfg       Config
	recs      []obs.Recorder
	reg       *obs.Registry
	poolCfg   *mempool.Config
	faults    *fault.Plan
	store     StateStore
	accounts  chain.AccountBackend
	contPager chain.ContractPager
}

// Option configures a Network at construction time. The zero option
// list reproduces the paper's experimental setup on a single shard:
// 5 nodes per shard, 2M gas per MicroBlock and FinalBlock, split gas
// accounting and the PBFT consensus model on, sequential execution,
// overflow guard off, no tracing.
type Option func(*settings)

// WithShards sets the number of execution shards (the DS committee is
// separate and always present).
func WithShards(n int) Option {
	return func(s *settings) { s.cfg.NumShards = n }
}

// WithNodesPerShard sets the committee size per shard; the DS
// committee is modelled at twice this size.
func WithNodesPerShard(n int) Option {
	return func(s *settings) { s.cfg.NodesPerShard = n }
}

// WithGasLimits sets the per-epoch gas caps for each shard's
// MicroBlock and for the DS committee's FinalBlock.
func WithGasLimits(shardGas, dsGas uint64) Option {
	return func(s *settings) {
		s.cfg.ShardGasLimit = shardGas
		s.cfg.DSGasLimit = dsGas
	}
}

// WithSplitGasAccounting toggles the Sec. 4.2.2 per-shard gas budgets.
func WithSplitGasAccounting(on bool) Option {
	return func(s *settings) { s.cfg.SplitGasAccounting = on }
}

// WithConsensusModel toggles the analytic PBFT timing model's
// contribution to the modelled epoch wall time.
func WithConsensusModel(on bool) Option {
	return func(s *settings) { s.cfg.ModelConsensus = on }
}

// WithParallelism toggles the parallel epoch pipeline (worker-pool
// dispatch and shard execution; results stay bit-identical to the
// sequential mode — see Config.ParallelShards).
func WithParallelism(on bool) Option {
	return func(s *settings) { s.cfg.ParallelShards = on }
}

// WithCompiledExecution toggles the closure-chain compiled execution
// engine (see Config.CompiledExecution); passing false forces every
// transition call through the AST-walking interpreter.
func WithCompiledExecution(on bool) Option {
	return func(s *settings) { s.cfg.CompiledExecution = on }
}

// WithOverflowGuard toggles the Sec. 6 conservative integer-overflow
// check in shards.
func WithOverflowGuard(on bool) Option {
	return func(s *settings) { s.cfg.OverflowGuard = on }
}

// WithIntraShardParallelism sets the intra-shard worker count (see
// Config.IntraShardWorkers). Values below 2 leave shard queues on the
// sequential path.
func WithIntraShardParallelism(workers int) Option {
	return func(s *settings) {
		if workers < 0 {
			workers = 0
		}
		s.cfg.IntraShardWorkers = workers
	}
}

// WithRecorder attaches an event recorder (e.g. an *obs.Journal or
// *obs.StageCollector) to the network's epoch pipeline. Repeated use
// accumulates recorders; they are fanned out through obs.Multi. The
// recorder must be safe for concurrent use when the parallel pipeline
// is enabled.
func WithRecorder(rec obs.Recorder) Option {
	return func(s *settings) { s.recs = append(s.recs, rec) }
}

// WithStateStore attaches a durability backend: after every committed
// epoch the network hands it the sealed FinalBlock and post-commit
// checkpoint (see StateStore). Attaching a store also makes every
// epoch collect its FinalBlock. Networks built by a shared genesis
// function can attach one later with AttachStateStore.
func WithStateStore(st StateStore) Option {
	return func(s *settings) { s.store = st }
}

// WithRegistry makes the network count its always-on metrics in reg
// instead of a private registry, letting several components (network,
// dispatcher, benchmark harness) share one snapshot.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *settings) { s.reg = reg }
}

// WithFaults attaches a deterministic fault-injection plan to the
// epoch pipeline. Each epoch, every shard consults the plan:
// stragglers seal their MicroBlock late (modeled execution time scaled
// by the straggle factor), while crashed shards, dropped MicroBlocks
// and corrupt StateDeltas all lose the shard's block — the DS merge
// skips it, the shard's committee is charged a PBFT view change, and
// the whole batch is requeued through the mempool's watermark-rewind
// path. After Config.FaultEscalation consecutive losses the
// dispatcher reroutes the shard's traffic to DS execution until the
// shard seals a healthy block again. An empty (or nil) plan leaves
// the pipeline byte-identical to an unfaulted network.
func WithFaults(plan *fault.Plan) Option {
	return func(s *settings) { s.faults = plan }
}

// WithFaultEscalation overrides the unavailability-backoff bound (see
// Config.FaultEscalation). Values below 1 are clamped to 1.
func WithFaultEscalation(epochs int) Option {
	return func(s *settings) {
		if epochs < 1 {
			epochs = 1
		}
		s.cfg.FaultEscalation = epochs
	}
}

// WithStateBackends puts the network's canonical state on external
// storage engines from birth: the account table is created on backend
// (chain.NewAccountsOn) and, when cp is non-nil, every contract's
// canonical state is paged through it. internal/pager implements both
// faces over one disk-backed LRU cache; wiring it here — rather than
// adopting after genesis — means a huge genesis population pages to
// disk as it is provisioned instead of materialising in memory first.
// Either argument may be nil to keep that side on the default
// resident representation.
func WithStateBackends(backend chain.AccountBackend, cp chain.ContractPager) Option {
	return func(s *settings) {
		s.accounts = backend
		s.contPager = cp
	}
}

// WithMempool puts an admission-controlled mempool in front of the
// epoch pipeline: SubmitTx routes through it, each RunEpoch pulls a
// deterministic gas-price-ordered batch via the pool's DrainEpoch, and
// gas-limit deferrals are requeued into it. The pool shares the
// network's metrics registry and trace recorders. Without this option
// SubmitTx degrades to the unconditional Submit path.
func WithMempool(cfg mempool.Config) Option {
	return func(s *settings) { s.poolCfg = &cfg }
}
