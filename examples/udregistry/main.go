// UDRegistry demo: the most popular contract on the Zilliqa mainnet
// (Sec. 5.2.1). Shows how domain grants (Bestow) and record updates
// (Configure) — ~90% of real usage — spread across shards keyed by the
// domain node, while ownership transfers fall back to the DS committee.
//
// Run with: go run ./examples/udregistry
package main

import (
	"crypto/sha256"
	"fmt"
	"log"
	"math/big"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

func node(name string) value.ByStr {
	h := sha256.Sum256([]byte(name))
	return value.ByStr{Ty: ast.TyByStr32, B: h[:]}
}

func main() {
	net := shard.NewNetwork(
		shard.WithShards(4),
		shard.WithGasLimits(1<<40, 1<<40),
		shard.WithConsensusModel(false),
	)
	admin := chain.AddrFromUint(1)
	net.CreateUser(admin, 1<<30)

	contract, err := net.DeployContract(admin, contracts.UDRegistry, map[string]value.Value{
		"registry_owner": admin.Value(),
	}, &signature.Query{
		Transitions: []string{"Bestow", "Configure", "ConfigureResolver"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Register some users and bestow domains on them.
	domains := []string{"alice.zil", "bob.zil", "carol.zil", "dave.zil", "erin.zil", "frank.zil"}
	owners := make([]chain.Address, len(domains))
	nonce := uint64(1)
	for i, d := range domains {
		owners[i] = chain.AddrFromUint(uint64(100 + i))
		net.CreateUser(owners[i], 1<<30)
		nonce++
		net.Submit(&chain.Tx{
			Kind: chain.TxCall, From: admin, To: contract, Nonce: nonce,
			Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
			Transition: "Bestow",
			Args: map[string]value.Value{
				"node": node(d), "owner": owners[i].Value(),
			},
		})
	}
	stats, err := net.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bestowed %d domains: per-shard %v, DS %d\n",
		stats.Committed, stats.PerShard, stats.DSCount)

	// Each owner configures their domain records. The constraints are
	// keyed by the domain node, so updates to different domains run in
	// parallel in different shards.
	for i, d := range domains {
		for j, kv := range [][2]string{
			{"crypto.ZIL.address", "0xabc"},
			{"ipfs.html.value", "QmHash"},
		} {
			net.Submit(&chain.Tx{
				Kind: chain.TxCall, From: owners[i], To: contract, Nonce: uint64(j + 1),
				Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
				Transition: "Configure",
				Args: map[string]value.Value{
					"node":  node(d),
					"owner": owners[i].Value(),
					"key":   value.Str{S: kv[0]},
					"val":   value.Str{S: kv[1]},
				},
			})
		}
	}
	stats, err = net.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured records: %d committed, per-shard %v, DS %d\n",
		stats.Committed, stats.PerShard, stats.DSCount)

	// Ownership transfers are not in the sharding signature: they are
	// routed to the DS committee.
	net.Submit(&chain.Tx{
		Kind: chain.TxCall, From: owners[0], To: contract, Nonce: 3,
		Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
		Transition: "TransferDomain",
		Args: map[string]value.Value{
			"node": node(domains[0]), "new_owner": owners[1].Value(),
		},
	})
	stats, err = net.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("domain transfer: committed %d, DS handled %d (expected: 1)\n",
		stats.Committed, stats.DSCount)

	// Read back alice.zil's record to confirm.
	c := net.Contracts.Get(contract)
	v, ok, err := c.Snapshot().MapGet("record_data",
		[]value.Value{node(domains[0]), value.Str{S: "crypto.ZIL.address"}})
	if err != nil || !ok {
		log.Fatalf("record read failed: ok=%v err=%v", ok, err)
	}
	fmt.Printf("alice.zil crypto.ZIL.address = %s\n", v)
	owner, ok, _ := c.Snapshot().MapGet("records", []value.Value{node(domains[0])})
	fmt.Printf("alice.zil owner after transfer = %s (bob = %s, ok=%v)\n", owner, owners[1], ok)
}
