// Repair-advisor demo (Sec. 6 of the paper): analyses the pre-rewrite
// "mainnet" NFT contract, shows why its Transfer cannot be sharded
// (a map key read from contract state), prints the advisor's suggested
// compare-and-swap refactoring, and demonstrates that the rewritten
// contract in the corpus is fully shardable.
//
// Run with: go run ./examples/repair
package main

import (
	"fmt"
	"log"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/repair"
	"cosplit/internal/core/signature"
)

func main() {
	// 1. Analyse the pre-rewrite contract.
	before := contracts.MustParse("NonfungibleTokenMainnet")
	aBefore, err := analysis.New(before)
	if err != nil {
		log.Fatal(err)
	}
	sumsBefore, err := aBefore.AnalyzeAll()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== before the rewrite (mainnet-style NFT) ==")
	fmt.Printf("Transfer analysable: %v\n\n", repair.Shardable(sumsBefore["Transfer"]))
	sg, err := signature.Derive(sumsBefore, signature.Query{Transitions: []string{"Mint", "Transfer"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature for {Mint, Transfer}:\n%s\n", sg)

	// 2. Ask the advisor what blocks sharding.
	fmt.Println("== repair suggestions (Sec. 6) ==")
	for _, s := range repair.Advise(sumsBefore) {
		fmt.Println(s)
	}

	// 3. The corpus NonfungibleToken applies exactly that rewrite:
	// Transfer takes the expected token_owner as a parameter and
	// validates it compare-and-swap style.
	after := contracts.MustParse("NonfungibleToken")
	aAfter, err := analysis.New(after)
	if err != nil {
		log.Fatal(err)
	}
	sumsAfter, err := aAfter.AnalyzeAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== after the rewrite (corpus NFT) ==")
	fmt.Printf("Transfer analysable: %v\n\n", repair.Shardable(sumsAfter["Transfer"]))
	sg2, err := signature.Derive(sumsAfter, signature.Query{
		Transitions: []string{"Mint", "Transfer"},
		WeakReads:   []string{"owned_count", "total_tokens"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature for {Mint, Transfer}:\n%s\n", sg2)
	fmt.Println("Transfer now owns only token-keyed components, so transfers of")
	fmt.Println("different tokens execute in different shards (Fig. 14, 'NFT transfer').")
}
