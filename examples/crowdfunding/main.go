// Crowdfunding lifecycle demo: a campaign is deployed with a CoSplit
// sharding signature; donations from many users are processed in
// parallel across shards (each donor's backers entry lands in their
// home shard); after the deadline passes without reaching the goal,
// backers reclaim their funds through the contract's home shard.
//
// Run with: go run ./examples/crowdfunding
package main

import (
	"fmt"
	"log"
	"math/big"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

func main() {
	net := shard.NewNetwork(
		shard.WithShards(3),
		shard.WithGasLimits(1<<40, 1<<40),
		shard.WithConsensusModel(false),
	)
	owner := chain.AddrFromUint(1)
	net.CreateUser(owner, 1_000_000)

	const numBackers = 30
	backers := make([]chain.Address, numBackers)
	for i := range backers {
		backers[i] = chain.AddrFromUint(uint64(100 + i))
		net.CreateUser(backers[i], 1_000_000)
	}

	// Deploy with a deadline a few epochs out and an unreachable goal,
	// so the claim-back path triggers.
	deadline := net.BlockNumber + 3
	contract, err := net.DeployContract(owner, contracts.Crowdfunding, map[string]value.Value{
		"owner":     owner.Value(),
		"max_block": value.BNum{V: new(big.Int).SetUint64(deadline)},
		"goal":      value.Uint128(1_000_000_000),
	}, &signature.Query{
		Transitions: []string{"Donate", "ClaimBack"},
		WeakReads:   []string{signature.BalanceField},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: everyone donates 1000 QA. Donations carry native tokens
	// (accept), so each lands in its donor's home shard.
	for _, b := range backers {
		net.Submit(&chain.Tx{
			Kind: chain.TxCall, From: b, To: contract, Nonce: 1,
			Amount: big.NewInt(1000), GasLimit: 100_000, GasPrice: 1,
			Transition: "Donate",
		})
	}
	stats, err := net.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("donations: %d committed, per-shard spread %v, DS %d\n",
		stats.Committed, stats.PerShard, stats.DSCount)
	fmt.Printf("contract balance after donations: %s QA\n",
		net.Accounts.Get(contract).Balance)

	// Phase 2: let the deadline pass.
	for net.BlockNumber <= deadline {
		if _, err := net.RunEpoch(); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 3: the goal was not met — backers claim their refunds.
	// Refunds move funds out of the contract, so they are pinned to the
	// contract's home shard (ContractShard) or the DS committee.
	for _, b := range backers {
		net.Submit(&chain.Tx{
			Kind: chain.TxCall, From: b, To: contract, Nonce: 2,
			Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
			Transition: "ClaimBack",
		})
	}
	total := 0
	for net.MempoolSize() > 0 {
		stats, err = net.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		total += stats.Committed
	}
	fmt.Printf("claim-backs committed: %d\n", total)
	fmt.Printf("contract balance after refunds: %s QA\n",
		net.Accounts.Get(contract).Balance)
	fmt.Printf("backer 0 final balance: %s QA (donated 1000, refunded 1000, paid gas)\n",
		net.Accounts.Get(backers[0]).Balance)
}
