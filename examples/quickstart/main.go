// Quickstart: analyse a Scilla contract with CoSplit and derive its
// sharding signature — the offline developer flow of Fig. 11.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
)

func main() {
	// 1. Parse the contract source (here: the corpus FungibleToken, an
	// ERC20-style token — Fig. 5 of the paper shows its Transfer).
	entry, err := contracts.Get("FungibleToken")
	if err != nil {
		log.Fatal(err)
	}
	module, err := parser.ParseModule(entry.Source)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Typecheck it, as any deploying miner would.
	checked, err := typecheck.Check(module)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contract %s: %d transitions, %d fields\n\n",
		checked.Module.Contract.Name,
		len(checked.Module.Contract.Transitions),
		len(checked.Module.Contract.Fields))

	// 3. Run the CoSplit effect analysis (Sec. 3.2-3.4). The summary of
	// Transfer reproduces Fig. 8.
	an, err := analysis.New(checked)
	if err != nil {
		log.Fatal(err)
	}
	summary, err := an.Analyze("Transfer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("effect summary of Transfer (cf. Fig. 8):")
	fmt.Println(summary)

	// 4. Ask the sharding solver for a signature (Algorithm 3.1): shard
	// Mint, Transfer and TransferFrom, accepting stale reads of the
	// token balances and allowances (Sec. 4.2.3).
	summaries, err := an.AnalyzeAll()
	if err != nil {
		log.Fatal(err)
	}
	sig, err := signature.Derive(summaries, signature.Query{
		Transitions: []string{"Mint", "Transfer", "TransferFrom"},
		WeakReads:   []string{"balances", "allowances"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sharding signature:")
	fmt.Println(sig)

	// 5. Interpret the result: Transfer owns only the sender's balance
	// entry, so transfers from different senders run in different
	// shards, while the credit to the recipient merges commutatively.
	for _, c := range sig.Constraints["Transfer"] {
		fmt.Printf("  Transfer constraint: %s\n", c)
	}
	fmt.Printf("  commutative writes of Transfer: %v\n", sig.CommutativeWrites["Transfer"])
}
