// ERC20 sharding demo: deploys the FungibleToken contract on the
// simulated sharded network twice — once with the default (baseline)
// strategy and once with its CoSplit sharding signature — submits the
// same random-transfer workload to both, and reports how the work
// spreads over shards and what throughput results.
//
// Run with: go run ./examples/erc20
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

const (
	numShards = 4
	numUsers  = 100
	numTxs    = 3000
)

func main() {
	for _, sharded := range []bool{false, true} {
		label := "baseline"
		if sharded {
			label = "CoSplit "
		}
		committed, wall, perShard, ds := run(sharded)
		tps := float64(committed) / wall.Seconds()
		fmt.Printf("%s: %5d committed in %8v  →  %6.0f TPS   shards=%v DS=%d\n",
			label, committed, wall.Round(time.Millisecond), tps, perShard, ds)
	}
}

func run(sharded bool) (committed int, wall time.Duration, perShard []int, ds int) {
	net := shard.NewNetwork(
		shard.WithShards(numShards),
		shard.WithGasLimits(1<<40, 1<<40),
	)

	deployer := chain.AddrFromUint(1)
	net.CreateUser(deployer, 1<<50)
	users := make([]chain.Address, numUsers)
	for i := range users {
		users[i] = chain.AddrFromUint(uint64(100 + i))
		net.CreateUser(users[i], 1<<40)
	}

	var q *signature.Query
	if sharded {
		q = &signature.Query{
			Transitions: []string{"Mint", "Transfer", "TransferFrom"},
			WeakReads:   []string{"balances", "allowances"},
		}
	}
	contract, err := net.DeployContract(deployer, contracts.FungibleToken, map[string]value.Value{
		"contract_owner": deployer.Value(),
		"token_name":     value.Str{S: "Example"},
		"token_symbol":   value.Str{S: "EXM"},
		"decimals":       value.Uint32V(6),
		"init_supply":    value.Uint128(1 << 40),
	}, q)
	if err != nil {
		log.Fatal(err)
	}

	// Seed every user with tokens (one epoch of mints).
	nonce := uint64(1)
	for _, u := range users {
		nonce++
		net.Submit(&chain.Tx{
			Kind: chain.TxCall, From: deployer, To: contract, Nonce: nonce,
			Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
			Transition: "Transfer",
			Args: map[string]value.Value{
				"to": u.Value(), "amount": value.Uint128(1 << 20),
			},
		})
	}
	if _, err := net.RunEpoch(); err != nil {
		log.Fatal(err)
	}

	// The measured workload: random user-to-user token transfers.
	rng := rand.New(rand.NewSource(7))
	nonces := map[chain.Address]uint64{}
	for i := 0; i < numTxs; i++ {
		from := users[rng.Intn(numUsers)]
		to := users[rng.Intn(numUsers)]
		for to == from {
			to = users[rng.Intn(numUsers)]
		}
		nonces[from]++
		net.Submit(&chain.Tx{
			Kind: chain.TxCall, From: from, To: contract, Nonce: nonces[from],
			Amount: big.NewInt(0), GasLimit: 100_000, GasPrice: 1,
			Transition: "Transfer",
			Args: map[string]value.Value{
				"to": to.Value(), "amount": value.Uint128(uint64(rng.Intn(100) + 1)),
			},
		})
	}
	perShard = make([]int, numShards)
	for net.MempoolSize() > 0 {
		stats, err := net.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		committed += stats.Committed
		wall += stats.WallTime
		for s, n := range stats.PerShard {
			perShard[s] += n
		}
		ds += stats.DSCount
	}
	return committed, wall, perShard, ds
}
