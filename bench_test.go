// Package cosplit_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure in the paper's evaluation
// (Sec. 5), as indexed in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem .
//
// The heavyweight throughput benchmarks (Fig. 14) use scaled-down
// epoch counts per iteration; cmd/shardsim runs the full 10-epoch
// configuration from the paper.
package cosplit_test

import (
	"fmt"
	"math/big"
	"testing"

	"cosplit/internal/bench"
	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/ge"
	"cosplit/internal/core/signature"
	"cosplit/internal/ethdata"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// --- E1/E2: Fig. 1 — Ethereum transaction breakdown ---

func BenchmarkFig1Breakdown(b *testing.B) {
	sample := ethdata.Generate(2000, 2020)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets := ethdata.Analyze(sample)
		if len(buckets) == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// --- E3/E4: Fig. 12 — deployment pipeline stage timings ---

func BenchmarkFig12Parse(b *testing.B) {
	for _, e := range contracts.All() {
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parser.ParseModule(e.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig12Typecheck(b *testing.B) {
	for _, e := range contracts.All() {
		m, err := parser.ParseModule(e.Source)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := typecheck.Check(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig12ShardingAnalysis(b *testing.B) {
	for _, e := range contracts.All() {
		chk := contracts.MustParse(e.Name)
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := analysis.New(chk)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := a.AnalyzeAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6/E7/E8: Fig. 13 and the Sec. 5.2 table — GE enumeration ---

func BenchmarkFig13GoodEnough(b *testing.B) {
	for _, name := range []string{
		"FungibleToken", "Crowdfunding", "NonfungibleToken", "ProofIPFS", "UDRegistry",
	} {
		chk := contracts.MustParse(name)
		a, err := analysis.New(chk)
		if err != nil {
			b.Fatal(err)
		}
		sums, err := a.AnalyzeAll()
		if err != nil {
			b.Fatal(err)
		}
		var fields []string
		for f := range chk.FieldTypes {
			fields = append(fields, f)
		}
		fields = append(fields, signature.BalanceField)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ge.Analyze(name, sums, fields); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: Fig. 14 — throughput per workload and configuration ---

// benchThroughputCfg is a scaled-down per-iteration configuration.
var benchThroughputCfg = bench.ThroughputConfig{
	Epochs:        3,
	TxsPerEpoch:   3000,
	NodesPerShard: 5,
	ShardGasLimit: 30_000,
	DSGasLimit:    30_000,
}

func BenchmarkFig14(b *testing.B) {
	for _, w := range workload.All() {
		name := w.Name
		for _, cfgCase := range []struct {
			label   string
			shards  int
			sharded bool
		}{
			{"baseline-3sh", 3, false},
			{"cosplit-3sh", 3, true},
			{"cosplit-4sh", 4, true},
			{"cosplit-5sh", 5, true},
		} {
			b.Run(fmt.Sprintf("%s/%s", name, cfgCase.label), func(b *testing.B) {
				var committed int
				var seconds float64
				for i := 0; i < b.N; i++ {
					w2, err := workload.ByName(name)
					if err != nil {
						b.Fatal(err)
					}
					// Scale down the provisioning phase: the offered
					// load here is 9,000 transactions per iteration.
					if w2.SetupSize > 10_000 {
						w2.SetupSize = 10_000
					}
					if w2.Users > 10_000 {
						w2.Users = 10_000
					}
					r, err := bench.MeasureThroughput(w2, cfgCase.shards, cfgCase.sharded, benchThroughputCfg)
					if err != nil {
						b.Fatal(err)
					}
					committed += r.Committed
					seconds += r.WallTime.Seconds()
				}
				b.ReportMetric(float64(committed)/seconds, "tps")
			})
		}
	}
}

// --- E10: Sec. 5.2.2 — dispatch and merge overheads ---

func benchmarkDispatch(b *testing.B, sharded bool) {
	w := workload.FTTransfer()
	w.Setup = nil
	env, err := workload.Provision(w, sharded, shard.WithShards(3))
	if err != nil {
		b.Fatal(err)
	}
	txs := make([]*chain.Tx, b.N)
	for i := range txs {
		tx := w.Next(env)
		tx.ID = uint64(i + 1)
		txs[i] = tx
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Net.Disp.Dispatch(txs[i])
	}
}

func BenchmarkDispatchBaseline(b *testing.B) { benchmarkDispatch(b, false) }
func BenchmarkDispatchCoSplit(b *testing.B)  { benchmarkDispatch(b, true) }

// BenchmarkMergePerField measures the per-changed-field cost of the
// three-way merge for both join operations (Sec. 5.2.2: 0.8µs → 48.65µs
// per field in the paper).
func BenchmarkMergePerField(b *testing.B) {
	for _, join := range []signature.Join{signature.OwnOverwrite, signature.IntMerge} {
		b.Run(join.String(), func(b *testing.B) {
			fieldTypes := contracts.MustParse("FungibleToken").FieldTypes
			const entries = 1000
			mkBase := func() *eval.MemState {
				st := eval.NewMemState(fieldTypes)
				if err := st.InitFrom(mustInterp(b)); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < entries; i++ {
					k := chain.AddrFromUint(uint64(i)).Value()
					if err := st.MapSet("balances", []value.Value{k}, value.Uint128(1000)); err != nil {
						b.Fatal(err)
					}
				}
				return st
			}
			base := mkBase()
			ov := chain.NewOverlay(base, fieldTypes)
			for i := 0; i < entries; i++ {
				k := chain.AddrFromUint(uint64(i)).Value()
				if err := ov.MapSet("balances", []value.Value{k}, value.Uint128(1234)); err != nil {
					b.Fatal(err)
				}
			}
			d, err := ov.ExtractDelta(chain.Address{}, 0, map[string]signature.Join{"balances": join})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				target := base.Copy()
				b.StartTimer()
				if err := chain.MergeDeltas(target, []*chain.StateDelta{d}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/entries, "ns/field")
		})
	}
}

func mustInterp(b *testing.B) *eval.Interpreter {
	b.Helper()
	chk := contracts.MustParse("FungibleToken")
	owner := chain.AddrFromUint(1)
	in, err := eval.New(chk, map[string]value.Value{
		"contract_owner": owner.Value(),
		"token_name":     value.Str{S: "B"},
		"token_symbol":   value.Str{S: "B"},
		"decimals":       value.Uint32V(6),
		"init_supply":    value.Uint128(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// --- E11 / core micro-benchmarks ---

// BenchmarkInterpreterTransfer measures raw single-transition execution
// (the unit the shards parallelise).
func BenchmarkInterpreterTransfer(b *testing.B) {
	in := mustInterp(b)
	st := eval.NewMemState(in.Checked().FieldTypes)
	if err := st.InitFrom(in); err != nil {
		b.Fatal(err)
	}
	owner := chain.AddrFromUint(1)
	if err := st.MapSet("balances", []value.Value{owner.Value()}, value.Uint128(1<<40)); err != nil {
		b.Fatal(err)
	}
	to := chain.AddrFromUint(2)
	args := map[string]value.Value{"to": to.Value(), "amount": value.Uint128(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &eval.Context{
			Sender: owner.Value(), Origin: owner.Value(),
			Amount: value.Uint128(0), BlockNumber: big.NewInt(1), State: st,
		}
		if _, err := in.Run(ctx, "Transfer", args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignatureDerive measures Algorithm 3.1 (the per-query cost
// that makes the Fig. 13 enumeration expensive at mining time).
func BenchmarkSignatureDerive(b *testing.B) {
	chk := contracts.MustParse("FungibleToken")
	a, err := analysis.New(chk)
	if err != nil {
		b.Fatal(err)
	}
	sums, err := a.AnalyzeAll()
	if err != nil {
		b.Fatal(err)
	}
	q := signature.Query{
		Transitions: []string{"Mint", "Transfer", "TransferFrom"},
		WeakReads:   []string{"balances", "allowances"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signature.Derive(sums, q); err != nil {
			b.Fatal(err)
		}
	}
}
