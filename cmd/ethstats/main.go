// Command ethstats regenerates the Fig. 1 Ethereum transaction
// breakdown from the synthetic calibrated trace (see internal/ethdata
// for the substitution rationale).
package main

import (
	"flag"
	"fmt"
	"os"

	"cosplit/internal/ethdata"
)

func main() {
	var (
		blocks = flag.Int("blocks", 16611, "number of sampled blocks (paper: 16,611)")
		seed   = flag.Int64("seed", 2020, "generator seed")
	)
	flag.Parse()
	sample := ethdata.Generate(*blocks, *seed)
	fmt.Printf("synthetic sample: %d blocks, %d transactions\n\n", *blocks, len(sample.Txs))
	buckets := ethdata.Analyze(sample)
	ethdata.Print(os.Stdout, buckets)
	_ = os.Stdout
}
