package main

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cosplit/internal/node"
	"cosplit/internal/rpc"
	"cosplit/internal/shard"
	"cosplit/internal/store"
	"cosplit/internal/workload"
)

// runNodeRole runs one cluster actor as its own OS process against a
// shared TCP hub, so process death (kill -9 included) is a real fault
// and restart + wire resync a real recovery. Roles:
//
//	hub        the central frame switch, listening on -hub
//	ds         the DS committee with the block producer
//	shard:<i>  the replica executing shard i
//	lookup     a client-facing lookup (optionally with -serve for RPC);
//	lookup:<i> further lookups, named lookup-<i>
//
// Every role but hub dials the hub at -hub (retrying while it comes
// up) and provisions the same deterministic genesis from
// -rpc-workload/-rpc-shards. With -state-dir, the ds and shard roles
// persist under per-role subdirectories and recover from them on
// restart; a shard that recovered behind the committee catches the
// tail up over the wire (MsgBlockRequest) once live traffic reveals
// the skew. SIGINT/SIGTERM shuts a role down cleanly; stateful roles
// print their final chain head as "node: final epoch=E root=R".
func runNodeRole(role, hubAddr, workloadName string, shards int, interval time.Duration, stateDir string, snapEvery int, rpcAddr string) {
	if hubAddr == "" {
		fail(errors.New("-node needs -hub (the hub's listen/dial address)"))
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if role == "hub" {
		hub, err := node.ListenTCP(hubAddr)
		fail(err)
		fmt.Fprintf(os.Stderr, "shardsim: hub on %s\n", hub.Addr())
		<-sig
		hub.Close()
		return
	}

	w, err := workload.ByName(workloadName)
	fail(err)
	genesis := func() (*shard.Network, error) {
		env, err := workload.Provision(w, true, shard.WithShards(shards))
		if err != nil {
			return nil, err
		}
		return env.Net, nil
	}
	openRoleStore := func(sub string, n *shard.Network) *store.Store {
		if stateDir == "" {
			return nil
		}
		st, err := store.Open(filepath.Join(stateDir, sub), store.WithSnapshotEvery(snapEvery))
		fail(err)
		fail(st.Recover(n))
		cp := n.Checkpoint()
		fmt.Fprintf(os.Stderr, "shardsim: %s recovered epoch=%d root=%s\n", sub, cp.Epoch, n.StateRoot())
		n.AttachStateStore(st)
		return st
	}

	switch {
	case role == "ds":
		net, err := genesis()
		fail(err)
		st := openRoleStore("ds", net)
		shardNames := make([]string, shards)
		for i := range shardNames {
			shardNames[i] = fmt.Sprintf("shard-%d", i)
		}
		var opts []node.DSOption
		if st != nil {
			opts = append(opts, node.DSBlockSource(st))
		}
		ds, err := node.NewDS("ds", net, dialHub(hubAddr, "ds"), shardNames, opts...)
		fail(err)
		ds.Run()
		fmt.Fprintf(os.Stderr, "shardsim: ds driving %d shards every %v via %s\n", shards, interval, hubAddr)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
	produce:
		for {
			select {
			case <-ticker.C:
				if res := ds.Tick(); res.Err != nil {
					fmt.Fprintln(os.Stderr, "shardsim: block producer:", res.Err)
				}
			case <-sig:
				break produce
			}
		}
		ds.Close()
		cp := net.Checkpoint()
		fmt.Printf("node: final epoch=%d root=%s\n", cp.Epoch, net.StateRoot())
		if st != nil {
			fail(st.Close())
		}

	case strings.HasPrefix(role, "shard:"):
		i, err := strconv.Atoi(strings.TrimPrefix(role, "shard:"))
		if err != nil || i < 0 || i >= shards {
			fail(fmt.Errorf("-node %s: shard index must be 0..%d", role, shards-1))
		}
		replica, err := genesis()
		fail(err)
		name := fmt.Sprintf("shard-%d", i)
		st := openRoleStore(name, replica)
		sn := node.NewShard(name, i, replica, dialHub(hubAddr, name), "ds")
		sn.Run()
		fmt.Fprintf(os.Stderr, "shardsim: %s executing via %s\n", name, hubAddr)
		<-sig
		sn.Close()
		if err := sn.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "shardsim: %s: %v\n", name, err)
		}
		cp := replica.Checkpoint()
		fmt.Printf("node: final epoch=%d root=%s\n", cp.Epoch, replica.StateRoot())
		if st != nil {
			fail(st.Close())
		}

	case role == "lookup" || strings.HasPrefix(role, "lookup:"):
		name := "lookup"
		if rest := strings.TrimPrefix(role, "lookup:"); rest != role {
			i, err := strconv.Atoi(rest)
			if err != nil || i < 0 {
				fail(fmt.Errorf("-node %s: lookup index must be a non-negative integer", role))
			}
			if i > 0 {
				name = fmt.Sprintf("lookup-%d", i)
			}
		}
		l := node.NewLookup(name, dialHub(hubAddr, name), "ds")
		l.Run()
		if rpcAddr != "" {
			go func() { fail(http.ListenAndServe(rpcAddr, rpc.NewServer(l))) }()
			fmt.Fprintf(os.Stderr, "shardsim: %s JSON-RPC on http://%s/ via %s\n", name, rpcAddr, hubAddr)
		} else {
			fmt.Fprintf(os.Stderr, "shardsim: %s via %s\n", name, hubAddr)
		}
		<-sig
		l.Close()

	default:
		fail(fmt.Errorf("-node %s: want hub, ds, shard:<i>, lookup, or lookup:<i>", role))
	}
}

// dialHub connects to the hub, retrying while it (or a restarted
// peer's registration slot) comes up — roles are separate processes
// with no start ordering.
func dialHub(addr, name string) node.Endpoint {
	deadline := time.Now().Add(15 * time.Second)
	for {
		ep, err := node.DialTCP(addr, name)
		if err == nil {
			return ep
		}
		if time.Now().After(deadline) {
			fail(fmt.Errorf("dial hub %s as %q: %w", addr, name, err))
		}
		time.Sleep(250 * time.Millisecond)
	}
}
