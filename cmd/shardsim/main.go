// Command shardsim runs the sharded-blockchain throughput experiments:
// Fig. 14 (TPS per workload under baseline and CoSplit sharding), the
// Sec. 5.2.2 overhead measurements, and the Sec. 5.2.3 ownership-vs-
// commutativity ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cosplit/internal/bench"
	"cosplit/internal/workload"
)

func main() {
	var (
		epochs    = flag.Int("epochs", 10, "epochs per configuration (paper: 10)")
		txs       = flag.Int("txs", 8000, "offered load per epoch")
		shardGas  = flag.Uint64("shard-gas", 40_000, "per-shard gas limit per epoch")
		dsGas     = flag.Uint64("ds-gas", 40_000, "DS-committee gas limit per epoch")
		nodes     = flag.Int("nodes", 5, "nodes per shard (paper: 5)")
		workloads = flag.String("workloads", "", "comma-separated workloads (default: all)")
		overheads = flag.Bool("overheads", false, "measure Sec. 5.2.2 overheads instead of Fig. 14")
		strategy  = flag.Bool("strategies", false, "run the Sec. 5.2.3 ownership-vs-commutativity ablation")
		listFlag  = flag.Bool("list", false, "list workloads")
	)
	flag.Parse()

	if *listFlag {
		for _, w := range workload.All() {
			fmt.Printf("%-20s (%s)\n", w.Name, w.Contract)
		}
		return
	}

	cfg := bench.ThroughputConfig{
		Epochs:        *epochs,
		TxsPerEpoch:   *txs,
		NodesPerShard: *nodes,
		ShardGasLimit: *shardGas,
		DSGasLimit:    *dsGas,
	}

	switch {
	case *overheads:
		r, err := bench.MeasureOverheads(5000)
		fail(err)
		bench.PrintOverheads(os.Stdout, r)
	case *strategy:
		rows, err := bench.RunStrategies(cfg)
		fail(err)
		bench.PrintStrategies(os.Stdout, rows)
	default:
		names := split(*workloads)
		if len(names) == 0 {
			for _, w := range workload.All() {
				names = append(names, w.Name)
			}
		}
		rows, err := bench.RunFig14(cfg, names)
		fail(err)
		bench.PrintFig14(os.Stdout, rows)
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardsim:", err)
		os.Exit(1)
	}
}
