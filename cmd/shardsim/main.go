// Command shardsim runs the sharded-blockchain throughput experiments:
// Fig. 14 (TPS per workload under baseline and CoSplit sharding), the
// Sec. 5.2.2 overhead measurements, the Sec. 5.2.3 ownership-vs-
// commutativity ablation, and the sequential-vs-parallel epoch
// pipeline benchmark (-epoch-bench, JSON via -bench-out).
//
// Observability: -trace-out streams every simulated network's epoch
// events as a JSONL journal, -metrics-out dumps the aggregated metrics
// registry as JSON on exit, and -pprof serves net/http/pprof for host
// profiling of the simulator itself.
//
// Admission control: -submit-rate switches to a closed-loop mode that
// feeds each workload through the mempool (SubmitTx + per-epoch drain)
// instead of the open-loop bench harness; -mempool-cap bounds the pool.
//
// Chaos: -faults seed:spec injects a deterministic fault schedule
// (crashed shards, dropped MicroBlocks, corrupt deltas, stragglers)
// into every simulated network, e.g.
// -faults "7:crash=0.05,drop=0.02,straggle=0.2x4". The same seed and
// spec reproduce the same fault schedule bit-for-bit in every
// execution mode.
//
// Persistence: -state-dir attaches the append-only state store.
// Closed-loop runs (-submit-rate) journal every committed epoch and
// recover from the directory on restart (-epochs 0 recovers and prints
// the chain head without driving load); -serve persists every stateful
// node under per-role subdirectories. -snapshot-every sets the
// snapshot/compaction cadence.
//
// Node mode: -serve addr boots a message-passing node cluster (DS
// committee, shard nodes, lookup) with a block producer and a
// JSON-RPC front door; -serve-tcp additionally runs the cluster's
// internal traffic over real TCP sockets. -hammer url runs the
// closed-loop load generator against a serving instance and reports
// submit-to-commit latency percentiles. Both sides provision the
// -rpc-workload genesis deterministically, so the hammer's stream is
// valid against the server's chain.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"cosplit/internal/bench"
	"cosplit/internal/fault"
	"cosplit/internal/mempool"
	"cosplit/internal/node"
	"cosplit/internal/obs"
	"cosplit/internal/pager"
	"cosplit/internal/rpc"
	"cosplit/internal/shard"
	"cosplit/internal/store"
	"cosplit/internal/workload"
)

func main() {
	var (
		epochs      = flag.Int("epochs", 10, "epochs per configuration (paper: 10)")
		txs         = flag.Int("txs", 8000, "offered load per epoch")
		shardGas    = flag.Uint64("shard-gas", 40_000, "per-shard gas limit per epoch")
		dsGas       = flag.Uint64("ds-gas", 40_000, "DS-committee gas limit per epoch")
		nodes       = flag.Int("nodes", 5, "nodes per shard (paper: 5)")
		workloads   = flag.String("workloads", "", "comma-separated workloads (default: all)")
		overheads   = flag.Bool("overheads", false, "measure Sec. 5.2.2 overheads instead of Fig. 14")
		strategy    = flag.Bool("strategies", false, "run the Sec. 5.2.3 ownership-vs-commutativity ablation")
		listFlag    = flag.Bool("list", false, "list workloads")
		parallel    = flag.Bool("parallel", false, "execute shard queues on the worker pool")
		intraPar    = flag.Int("intra-parallel", 0, "intra-shard worker-pool size: run commuting tx groups within each shard concurrently (0 = sequential queues)")
		epochB      = flag.Bool("epoch-bench", false, "run the sequential-vs-parallel epoch pipeline benchmark")
		benchOut    = flag.String("bench-out", "", "write the -epoch-bench report as JSON to this file")
		benchWl     = flag.String("bench-workload", "FT transfer disjoint", "workload for -epoch-bench")
		submitRate  = flag.Int("submit-rate", 0, "closed-loop mode: offer up to this many txs/epoch through the mempool (0 = open-loop bench)")
		mempoolCap  = flag.Int("mempool-cap", 0, "mempool capacity for -submit-rate mode (0 = default)")
		faultSpec   = flag.String("faults", "", `deterministic fault injection, "seed:kind=prob[,...]" with kinds crash, drop, corrupt, straggle (e.g. "7:crash=0.05,straggle=0.2x4")`)
		traceOut    = flag.String("trace-out", "", "write a JSONL epoch-trace journal of every simulated network to this file")
		metricsOut  = flag.String("metrics-out", "", "write the aggregated metrics registry as JSON to this file on exit")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		stateDir    = flag.String("state-dir", "", "persistent state directory: closed-loop runs (-submit-rate, one -workloads entry) journal every epoch and recover on restart; -epochs 0 recovers and prints the chain head without driving load; with -serve every stateful node persists under per-role subdirectories")
		snapEvery   = flag.Int("snapshot-every", 8, "with -state-dir: full-state snapshot and journal compaction every N committed epochs (0 = journal only, replayed from genesis)")
		stateBudget = flag.Int64("state-budget", 0, "with -state-dir: put canonical state behind a disk-backed LRU page cache of at most this many bytes (0 = fully resident); pages live under <state-dir>/pages and replace full snapshot files")
		pageSize    = flag.Int("page-size", 512, "target accounts per page for -state-budget and -state-bench (the page table is sized to population/page-size, rounded up to a power of two)")
		stateBench  = flag.Bool("state-bench", false, "run the paged-state benchmark (accounts x budget grid: throughput, faults/epoch, p99 fault latency) and write BENCH_state.json via -bench-out")
		noCompile   = flag.Bool("no-compile", false, "disable the closure-chain compiled executor and run every transition on the AST interpreter (results are bit-identical, only slower)")

		serveAddr = flag.String("serve", "", "serve the JSON-RPC front door on this address (e.g. 127.0.0.1:8545) over a message-passing node cluster; with -node lookup, the lookup's own RPC address")
		serveTCP  = flag.String("serve-tcp", "", "with -serve: run the cluster's internal traffic over a TCP hub on this address instead of in-process channels")
		lookups   = flag.Int("lookups", 1, "with -serve: number of lookup nodes in the cluster (RPC serves from the first)")
		blockIvl  = flag.Duration("block-interval", 250*time.Millisecond, "block production interval for -serve")
		nodeRole  = flag.String("node", "", "run one cluster actor as this OS process against the TCP hub at -hub: hub, ds, shard:<i>, lookup, or lookup:<i>")
		hubAddr   = flag.String("hub", "", "with -node: the hub's address (listened on by the hub role, dialed by every other role)")
		hammerURL = flag.String("hammer", "", "hammer a serving instance at this URL (e.g. http://127.0.0.1:8545) and report latency percentiles; a comma-separated list round-robins workers over several servers")
		hammerN   = flag.Int("hammer-n", 1000, "transactions to push through with -hammer")
		hammerWk  = flag.Int("hammer-workers", 8, "closed-loop workers for -hammer")
		chainInfo = flag.String("chain-info", "", "query a serving instance at this URL for its chain head (epoch + state root) and exit")
		rpcWorkld = flag.String("rpc-workload", "FT transfer", "workload provisioned as genesis by -serve/-node and used as the -hammer stream (must match on both sides)")
		rpcShards = flag.Int("rpc-shards", 3, "shard count for -serve/-node/-hammer genesis (must match on both sides)")
	)
	flag.Parse()

	if (*parallel || *intraPar > 1) && runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr, "shardsim: warning: -parallel/-intra-parallel requested with GOMAXPROCS=1; "+
			"goroutines will time-share one core, so measured wall-clock will not show the modeled speedup")
	}

	if *listFlag {
		for _, w := range workload.All() {
			fmt.Printf("%-20s (%s)\n", w.Name, w.Contract)
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			fail(http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Fprintf(os.Stderr, "shardsim: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	// Shared observability for every network the chosen experiment
	// builds: one registry aggregates metrics across configurations,
	// and one journal (if requested) receives the interleaved traces.
	reg := obs.NewRegistry()
	netOpts := []shard.Option{shard.WithRegistry(reg)}
	if *noCompile {
		netOpts = append(netOpts, shard.WithCompiledExecution(false))
	}
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec)
		fail(err)
		fmt.Fprintf(os.Stderr, "shardsim: injecting %s\n", plan)
		netOpts = append(netOpts, shard.WithFaults(plan))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		journal := obs.NewJournal(f)
		defer func() {
			fail(journal.Close())
			fail(f.Close())
			fmt.Printf("wrote %s\n", *traceOut)
		}()
		netOpts = append(netOpts, shard.WithRecorder(journal))
	}
	if *metricsOut != "" {
		defer func() {
			f, err := os.Create(*metricsOut)
			fail(err)
			fail(reg.Snapshot().WriteJSON(f))
			fail(f.Close())
			fmt.Printf("wrote %s\n", *metricsOut)
		}()
	}

	// runOpts carries the intra-shard pool size into every experiment
	// path except -epoch-bench, which sweeps it per row via IntraWorkers.
	runOpts := netOpts
	if *intraPar > 0 {
		runOpts = append(append([]shard.Option{}, netOpts...),
			shard.WithIntraShardParallelism(*intraPar))
	}

	cfg := bench.ThroughputConfig{
		Epochs:        *epochs,
		TxsPerEpoch:   *txs,
		NodesPerShard: *nodes,
		ShardGasLimit: *shardGas,
		DSGasLimit:    *dsGas,
		Parallel:      *parallel,
		NetOptions:    runOpts,
	}

	switch {
	case *nodeRole != "":
		runNodeRole(*nodeRole, *hubAddr, *rpcWorkld, *rpcShards, *blockIvl, *stateDir, *snapEvery, *serveAddr)
	case *serveAddr != "":
		serveRPC(*serveAddr, *serveTCP, *rpcWorkld, *rpcShards, *lookups, *blockIvl, *stateDir, *snapEvery)
	case *chainInfo != "":
		info, err := rpc.NewClient(*chainInfo).ChainInfo()
		fail(err)
		fmt.Printf("chain: epoch=%d root=%s\n", info.Epoch, info.StateRoot)
	case *hammerURL != "":
		w, err := workload.ByName(*rpcWorkld)
		fail(err)
		next, err := rpc.WorkloadStream(w, *rpcShards)
		fail(err)
		urls := split(*hammerURL)
		fmt.Fprintf(os.Stderr, "shardsim: hammering %s: %d txs over %d workers (workload %q)\n",
			strings.Join(urls, ", "), *hammerN, *hammerWk, w.Name)
		rep, err := rpc.RunHammer(rpc.HammerConfig{
			URLs:    urls,
			Workers: *hammerWk,
			Total:   *hammerN,
			Next:    next,
		})
		fail(err)
		rpc.PrintHammer(os.Stdout, rep)
	case *stateDir != "":
		// Persistent chain: provision the deterministic genesis, recover
		// whatever a previous run journaled on top of it, then either
		// stop (-epochs 0: inspect the recovered head) or resume driving
		// the closed loop with every committed epoch journaled.
		names := split(*workloads)
		if len(names) != 1 {
			fail(fmt.Errorf("-state-dir persists one workload's chain: pass exactly one -workloads entry, got %d", len(names)))
		}
		if *submitRate <= 0 && *epochs != 0 {
			fail(fmt.Errorf("-state-dir needs -submit-rate (closed-loop run) or -epochs 0 (recover only)"))
		}
		w, err := workload.ByName(names[0])
		fail(err)
		pcfg := mempool.DefaultConfig()
		if *mempoolCap > 0 {
			pcfg.Capacity = *mempoolCap
		}
		provOpts := append([]shard.Option{
			shard.WithShards(4),
			shard.WithNodesPerShard(*nodes),
			shard.WithGasLimits(*shardGas, *dsGas),
			shard.WithParallelism(*parallel),
			shard.WithMempool(pcfg),
		}, runOpts...)
		env, err := workload.Provision(w, true, provOpts...)
		fail(err)
		sopts := []store.Option{store.WithSnapshotEvery(*snapEvery), store.WithRegistry(reg)}
		if *stateBudget > 0 {
			pages := env.Net.Accounts.Len() / *pageSize
			if pages < 1 {
				pages = 1
			}
			sopts = append(sopts, store.WithPagedState(*stateBudget, pager.WithPageCount(pages)))
			fmt.Fprintf(os.Stderr, "shardsim: paged state, budget %d MB, %d-page table\n",
				*stateBudget>>20, pages)
		}
		st, err := store.Open(*stateDir, sopts...)
		fail(err)
		fail(st.Recover(env.Net))
		cp := env.Net.Checkpoint()
		fmt.Printf("state: recovered epoch=%d root=%s\n", cp.Epoch, env.Net.StateRoot())
		if *epochs == 0 {
			fail(st.Close())
			return
		}
		env.ResyncNonces()
		env.Net.AttachStateStore(st)
		res, err := workload.RunClosedLoopEnv(env, w, *submitRate, *epochs)
		fail(err)
		fmt.Printf("closed loop: offered %d admitted %d backpressured %d rejected %d committed %d failed %d depth %d\n",
			res.Offered, res.Admitted, res.Backpressured, res.Rejected, res.Committed, res.Failed, res.FinalDepth)
		cp = env.Net.Checkpoint()
		fmt.Printf("state: final epoch=%d root=%s\n", cp.Epoch, env.Net.StateRoot())
		fail(st.Close())
	case *submitRate > 0:
		pcfg := mempool.DefaultConfig()
		if *mempoolCap > 0 {
			pcfg.Capacity = *mempoolCap
		}
		names := split(*workloads)
		if len(names) == 0 {
			for _, w := range workload.All() {
				names = append(names, w.Name)
			}
		}
		clOpts := append([]shard.Option{
			shard.WithShards(4),
			shard.WithNodesPerShard(*nodes),
			shard.WithGasLimits(*shardGas, *dsGas),
			shard.WithParallelism(*parallel),
		}, runOpts...)
		fmt.Printf("closed loop: %d epochs, %d txs/epoch offered, pool capacity %d\n\n",
			*epochs, *submitRate, pcfg.Capacity)
		fmt.Printf("%-20s %8s %8s %9s %8s %9s %7s %6s",
			"workload", "offered", "admitted", "backpres", "rejected", "committed", "failed", "depth")
		if *faultSpec != "" {
			fmt.Printf(" %6s %7s %6s", "lost", "viewchg", "escal")
		}
		fmt.Println()
		for _, name := range names {
			w, err := workload.ByName(name)
			fail(err)
			res, err := workload.RunClosedLoop(w, true, *submitRate, *epochs, pcfg, clOpts...)
			fail(err)
			fmt.Printf("%-20s %8d %8d %9d %8d %9d %7d %6d",
				res.Workload, res.Offered, res.Admitted, res.Backpressured,
				res.Rejected, res.Committed, res.Failed, res.FinalDepth)
			if *faultSpec != "" {
				fmt.Printf(" %6d %7d %6d", res.Lost, res.ViewChanges, res.Escalated)
			}
			fmt.Println()
		}
	case *stateBench:
		scfg := bench.DefaultStateBenchConfig()
		scfg.PageAccounts = *pageSize
		var out *os.File
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			fail(err)
			out = f
		}
		rep, err := bench.RunStateBench(scfg)
		fail(err)
		bench.PrintStateBench(os.Stdout, rep)
		if out != nil {
			fail(rep.WriteJSON(out))
			fail(out.Close())
			fmt.Printf("\nwrote %s\n", *benchOut)
		}
	case *epochB:
		ecfg := bench.DefaultEpochBenchConfig()
		ecfg.Workload = *benchWl
		ecfg.NodesPerShard = *nodes
		ecfg.NetOptions = netOpts
		if *intraPar > 0 {
			ecfg.IntraWorkers = *intraPar
		}
		// Open the output before the (multi-second) benchmark runs so a
		// bad path fails immediately.
		var out *os.File
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			fail(err)
			out = f
		}
		rep, err := bench.RunEpochBench(ecfg)
		fail(err)
		bench.PrintEpochBench(os.Stdout, rep)
		if out != nil {
			fail(rep.WriteJSON(out))
			fail(out.Close())
			fmt.Printf("\nwrote %s\n", *benchOut)
		}
	case *overheads:
		r, err := bench.MeasureOverheads(5000, netOpts...)
		fail(err)
		bench.PrintOverheads(os.Stdout, r)
	case *strategy:
		rows, err := bench.RunStrategies(cfg)
		fail(err)
		bench.PrintStrategies(os.Stdout, rows)
	default:
		names := split(*workloads)
		if len(names) == 0 {
			for _, w := range workload.All() {
				names = append(names, w.Name)
			}
		}
		rows, err := bench.RunFig14(cfg, names)
		fail(err)
		bench.PrintFig14(os.Stdout, rows)
	}
}

// serveRPC boots a node cluster with a block producer and serves the
// JSON-RPC front door until the process is killed. The genesis stays a
// pure function of the workload and shard count so a hammer process
// can provision the identical transaction stream on its side.
func serveRPC(addr, tcpAddr, workloadName string, shards, lookups int, interval time.Duration, stateDir string, snapEvery int) {
	w, err := workload.ByName(workloadName)
	fail(err)
	genesis := func() (*shard.Network, error) {
		env, err := workload.Provision(w, true, shard.WithShards(shards))
		if err != nil {
			return nil, err
		}
		return env.Net, nil
	}
	var opts []node.ClusterOption
	if tcpAddr != "" {
		opts = append(opts, node.ClusterTCP(tcpAddr))
	}
	if lookups > 1 {
		opts = append(opts, node.ClusterLookupCount(lookups))
	}
	if stateDir != "" {
		opts = append(opts, node.ClusterStateDir(stateDir, snapEvery))
		fmt.Fprintf(os.Stderr, "shardsim: persisting node state under %s (snapshot every %d epochs)\n", stateDir, snapEvery)
	}
	cluster, err := node.NewCluster(genesis, opts...)
	fail(err)
	defer cluster.Close()
	stop := cluster.Produce(interval, func(res node.TickResult) {
		if res.Err != nil {
			fmt.Fprintln(os.Stderr, "shardsim: block producer:", res.Err)
		}
	})
	defer stop()
	transport := "in-process channels"
	if tcpAddr != "" {
		transport = "TCP via " + tcpAddr
	}
	fmt.Fprintf(os.Stderr, "shardsim: JSON-RPC on http://%s/ (workload %q, %d shards, block interval %v, transport %s)\n",
		addr, w.Name, shards, interval, transport)
	fail(http.ListenAndServe(addr, rpc.NewServer(cluster.Lookup)))
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardsim:", err)
		os.Exit(1)
	}
}
