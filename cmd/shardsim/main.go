// Command shardsim runs the sharded-blockchain throughput experiments:
// Fig. 14 (TPS per workload under baseline and CoSplit sharding), the
// Sec. 5.2.2 overhead measurements, the Sec. 5.2.3 ownership-vs-
// commutativity ablation, and the sequential-vs-parallel epoch
// pipeline benchmark (-epoch-bench, JSON via -bench-out).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cosplit/internal/bench"
	"cosplit/internal/workload"
)

func main() {
	var (
		epochs    = flag.Int("epochs", 10, "epochs per configuration (paper: 10)")
		txs       = flag.Int("txs", 8000, "offered load per epoch")
		shardGas  = flag.Uint64("shard-gas", 40_000, "per-shard gas limit per epoch")
		dsGas     = flag.Uint64("ds-gas", 40_000, "DS-committee gas limit per epoch")
		nodes     = flag.Int("nodes", 5, "nodes per shard (paper: 5)")
		workloads = flag.String("workloads", "", "comma-separated workloads (default: all)")
		overheads = flag.Bool("overheads", false, "measure Sec. 5.2.2 overheads instead of Fig. 14")
		strategy  = flag.Bool("strategies", false, "run the Sec. 5.2.3 ownership-vs-commutativity ablation")
		listFlag  = flag.Bool("list", false, "list workloads")
		parallel  = flag.Bool("parallel", false, "execute shard queues on the worker pool")
		epochB    = flag.Bool("epoch-bench", false, "run the sequential-vs-parallel epoch pipeline benchmark")
		benchOut  = flag.String("bench-out", "", "write the -epoch-bench report as JSON to this file")
		benchWl   = flag.String("bench-workload", "FT transfer", "workload for -epoch-bench")
	)
	flag.Parse()

	if *listFlag {
		for _, w := range workload.All() {
			fmt.Printf("%-20s (%s)\n", w.Name, w.Contract)
		}
		return
	}

	cfg := bench.ThroughputConfig{
		Epochs:        *epochs,
		TxsPerEpoch:   *txs,
		NodesPerShard: *nodes,
		ShardGasLimit: *shardGas,
		DSGasLimit:    *dsGas,
		Parallel:      *parallel,
	}

	switch {
	case *epochB:
		ecfg := bench.DefaultEpochBenchConfig()
		ecfg.Workload = *benchWl
		ecfg.NodesPerShard = *nodes
		// Open the output before the (multi-second) benchmark runs so a
		// bad path fails immediately.
		var out *os.File
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			fail(err)
			out = f
		}
		rep, err := bench.RunEpochBench(ecfg)
		fail(err)
		bench.PrintEpochBench(os.Stdout, rep)
		if out != nil {
			fail(rep.WriteJSON(out))
			fail(out.Close())
			fmt.Printf("\nwrote %s\n", *benchOut)
		}
	case *overheads:
		r, err := bench.MeasureOverheads(5000)
		fail(err)
		bench.PrintOverheads(os.Stdout, r)
	case *strategy:
		rows, err := bench.RunStrategies(cfg)
		fail(err)
		bench.PrintStrategies(os.Stdout, rows)
	default:
		names := split(*workloads)
		if len(names) == 0 {
			for _, w := range workload.All() {
				names = append(names, w.Name)
			}
		}
		rows, err := bench.RunFig14(cfg, names)
		fail(err)
		bench.PrintFig14(os.Stdout, rows)
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardsim:", err)
		os.Exit(1)
	}
}
