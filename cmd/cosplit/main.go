// Command cosplit is the CoSplit analyser CLI: it parses, typechecks
// and analyses Scilla contracts, prints Fig. 8-style transition
// summaries, solves sharding queries into signatures (Fig. 11), and
// regenerates the static-analysis evaluation artifacts (Fig. 12,
// Fig. 13, the Sec. 5.2 table, the Sec. 5.1.2 histogram).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cosplit/internal/bench"
	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/ge"
	"cosplit/internal/core/repair"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
)

func main() {
	var (
		file      = flag.String("file", "", "path to a Scilla contract source file")
		corpus    = flag.String("contract", "", "name of a corpus contract (see -list)")
		list      = flag.Bool("list", false, "list corpus contracts")
		summaries = flag.Bool("summaries", false, "print per-transition effect summaries (Fig. 8)")
		sign      = flag.String("sign", "", "comma-separated transitions to shard; prints the signature")
		weak      = flag.String("weak", "", "comma-separated weak-read fields for -sign")
		geFlag    = flag.Bool("ge", false, "enumerate good-enough signatures (Fig. 13 data)")
		timing    = flag.Bool("timing", false, "measure the deployment pipeline for the corpus (Fig. 12)")
		rounds    = flag.Int("rounds", 100, "measurement rounds for -timing")
		histogram = flag.Bool("histogram", false, "print the corpus transition histogram (Sec. 5.1.2)")
		table52   = flag.Bool("table52", false, "print the Sec. 5.2 contract table")
		fig13     = flag.Bool("fig13", false, "print Fig. 13 GE statistics for the whole corpus")
		advise    = flag.Bool("advise", false, "print Sec. 6 repair suggestions for unshardable transitions")
		jsonOut   = flag.Bool("json", false, "with -sign: emit the signature in the JSON wire format")
	)
	flag.Parse()

	switch {
	case *list:
		for _, name := range contracts.Names() {
			fmt.Println(name)
		}
		return
	case *timing:
		rows, err := bench.RunFig12(*rounds)
		fail(err)
		bench.PrintFig12(os.Stdout, rows)
		return
	case *histogram:
		hist, err := bench.TransitionHistogram()
		fail(err)
		bench.PrintHistogram(os.Stdout, hist)
		return
	case *table52:
		stats, err := bench.RunGE([]string{
			"FungibleToken", "Crowdfunding", "NonfungibleToken", "ProofIPFS", "UDRegistry",
		})
		fail(err)
		bench.PrintTable52(os.Stdout, stats)
		return
	case *fig13:
		stats, err := bench.RunGE(nil)
		fail(err)
		bench.PrintFig13(os.Stdout, stats)
		return
	}

	chk := load(*file, *corpus)
	a, err := analysis.New(chk)
	fail(err)
	sums, err := a.AnalyzeAll()
	fail(err)

	if *advise {
		suggestions := repair.Advise(sums)
		if len(suggestions) == 0 {
			fmt.Println("no repair suggestions: every transition is analysable")
		}
		for _, sug := range suggestions {
			fmt.Println(sug)
		}
		return
	}

	if *summaries || (*sign == "" && !*geFlag) {
		names := make([]string, 0, len(sums))
		for tr := range sums {
			names = append(names, tr)
		}
		sort.Strings(names)
		for _, tr := range names {
			fmt.Printf("=== transition %s ===\n%s\n", tr, sums[tr])
		}
	}
	if *sign != "" {
		q := signature.Query{Transitions: split(*sign), WeakReads: split(*weak)}
		sg, err := signature.Derive(sums, q)
		fail(err)
		if *jsonOut {
			data, err := json.MarshalIndent(sg, "", "  ")
			fail(err)
			fmt.Println(string(data))
		} else {
			fmt.Println(sg)
		}
	}
	if *geFlag {
		var fields []string
		for f := range chk.FieldTypes {
			fields = append(fields, f)
		}
		fields = append(fields, signature.BalanceField)
		res, err := ge.Analyze(chk.Module.Contract.Name, sums, fields)
		fail(err)
		fmt.Printf("transitions:      %d\n", res.NumTransitions)
		fmt.Printf("largest GE:       %d  %v\n", res.LargestGE, res.LargestGESelection)
		fmt.Printf("maximal GE count: %d\n", res.MaximalGE)
		for _, sel := range res.MaximalSelections {
			fmt.Printf("  maximal: %v\n", sel)
		}
		fmt.Printf("solver queries:   %d\n", res.Queries)
	}
}

func load(file, corpus string) *typecheck.Checked {
	var source string
	switch {
	case file != "":
		b, err := os.ReadFile(file)
		fail(err)
		source = string(b)
	case corpus != "":
		e, err := contracts.Get(corpus)
		fail(err)
		source = e.Source
	default:
		fmt.Fprintln(os.Stderr, "usage: cosplit -contract <name> | -file <path> [flags]; see -help")
		os.Exit(2)
	}
	m, err := parser.ParseModule(source)
	fail(err)
	chk, err := typecheck.Check(m)
	fail(err)
	return chk
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosplit:", err)
		os.Exit(1)
	}
}
