// Command scilla-check parses and typechecks a Scilla contract and
// optionally pretty-prints it back (a front-end sanity tool mirroring
// the scilla-checker of the reference implementation).
package main

import (
	"flag"
	"fmt"
	"os"

	"cosplit/internal/contracts"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
)

func main() {
	var (
		file   = flag.String("file", "", "path to a Scilla source file")
		corpus = flag.String("contract", "", "name of a corpus contract")
		print  = flag.Bool("print", false, "pretty-print the parsed module")
		info   = flag.Bool("info", true, "print contract structure summary")
	)
	flag.Parse()

	var source string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		fail(err)
		source = string(b)
	case *corpus != "":
		e, err := contracts.Get(*corpus)
		fail(err)
		source = e.Source
	default:
		fmt.Fprintln(os.Stderr, "usage: scilla-check -file <path> | -contract <name>")
		os.Exit(2)
	}

	m, err := parser.ParseModule(source)
	fail(err)
	chk, err := typecheck.Check(m)
	fail(err)

	if *print {
		fmt.Print(ast.PrintModule(m))
		return
	}
	if *info {
		c := &chk.Module.Contract
		fmt.Printf("contract %s: OK\n", c.Name)
		fmt.Printf("  parameters:  %d\n", len(c.Params))
		fmt.Printf("  fields:      %d\n", len(c.Fields))
		for _, f := range c.Fields {
			fmt.Printf("    %-24s : %s\n", f.Name, f.Type)
		}
		fmt.Printf("  transitions: %d\n", len(c.Transitions))
		for _, tr := range c.Transitions {
			fmt.Printf("    %s/%d\n", tr.Name, len(tr.Params))
		}
		fmt.Printf("  LOC:         %d\n", contracts.LinesOfCode(source))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scilla-check:", err)
		os.Exit(1)
	}
}
