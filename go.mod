module cosplit

go 1.22
