//go:build ignore

// benchdiff_extract prints the gating metric of a benchmark report as
// "<kind> <value>": for BENCH_epoch.json the execute_max (ms) of the
// 1-shard sequential row (lower is better), for BENCH_state.json the
// minimum committed TPS across the paged rows at the grid's default
// (largest) budget (higher is better). Helper for
// scripts/benchdiff.sh; kept in Go so the comparison needs no jq.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type report struct {
	Schema string `json:"schema"`
	Rows   []struct {
		// Epoch-bench fields.
		Shards       int  `json:"shards"`
		Parallel     bool `json:"parallel"`
		IntraWorkers int  `json:"intra_workers"`
		Stages       struct {
			ExecuteMax float64 `json:"execute_max"`
		} `json:"stages_ms"`
		// State-bench fields.
		Paged  bool    `json:"paged"`
		Budget int64   `json:"budget"`
		TPS    float64 `json:"tps"`
	} `json:"rows"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff_extract FILE.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if strings.HasPrefix(r.Schema, "cosplit-state-bench/") {
		// The default budget is the largest the grid measured
		// (DefaultStateBenchConfig puts pager.DefaultBudget at the end);
		// the gate takes the worst paged cell at that budget so a
		// regression at any population trips it.
		var budget int64
		for _, row := range r.Rows {
			if row.Paged && row.Budget > budget {
				budget = row.Budget
			}
		}
		minTPS, found := 0.0, false
		for _, row := range r.Rows {
			if row.Paged && row.Budget == budget && (!found || row.TPS < minTPS) {
				minTPS, found = row.TPS, true
			}
		}
		if !found {
			fmt.Fprintln(os.Stderr, "no paged rows found")
			os.Exit(2)
		}
		fmt.Printf("state_tps %g\n", minTPS)
		return
	}
	for _, row := range r.Rows {
		if row.Shards == 1 && !row.Parallel && row.IntraWorkers == 0 {
			fmt.Printf("exec_max %g\n", row.Stages.ExecuteMax)
			return
		}
	}
	fmt.Fprintln(os.Stderr, "no 1-shard sequential row found")
	os.Exit(2)
}
