//go:build ignore

// benchdiff_extract prints the execute_max (in ms) of the 1-shard
// sequential row of a BENCH_epoch.json report. Helper for
// scripts/benchdiff.sh; kept in Go so the comparison needs no jq.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type report struct {
	Rows []struct {
		Shards       int  `json:"shards"`
		Parallel     bool `json:"parallel"`
		IntraWorkers int  `json:"intra_workers"`
		Stages       struct {
			ExecuteMax float64 `json:"execute_max"`
		} `json:"stages_ms"`
	} `json:"rows"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff_extract FILE.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, row := range r.Rows {
		if row.Shards == 1 && !row.Parallel && row.IntraWorkers == 0 {
			fmt.Println(row.Stages.ExecuteMax)
			return
		}
	}
	fmt.Fprintln(os.Stderr, "no 1-shard sequential row found")
	os.Exit(2)
}
