#!/usr/bin/env sh
# Repository verification: formatting, build, vet, full test suite, and
# the race detector over the concurrent packages (the parallel epoch
# pipeline in internal/shard, the striped dispatcher in
# internal/dispatch, the striped mempool in internal/mempool, and the
# obs recorders/journal that all three feed).
set -eux

cd "$(dirname "$0")/.."

UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go build ./...
go vet ./...
go test ./...
# The race run covers the golden-trace tests (journal writes from the
# shard pipeline) and the cross-mode determinism suite (sequential vs
# parallel-shards vs intra-parallel vs both) alongside the concurrent
# packages.
go test -race ./internal/shard/... ./internal/dispatch/... ./internal/mempool/... ./internal/obs/... ./internal/fault/...
# The node/wire/rpc race run covers the actor cluster end to end,
# including the TCP-transport smoke (TestTCPClusterSmoke) and the
# fault-injection recovery tests over real frames.
go test -race ./internal/wire/... ./internal/node/... ./internal/rpc/...
# The persistence race run covers the state store (journal append,
# snapshot rotation, recovery), the disk-backed page cache (concurrent
# faults and evictions under the accounts lock), and the incremental
# root trie under -short (the million-account tests opt out of the
# race detector). The paged store and cluster tests run in their
# packages' race lines above/below as well; internal/pager is listed
# explicitly because nothing else covers it.
go test -race -short ./internal/store/... ./internal/trie/... ./internal/pager/...
# Memory-budget regression gate: the million-account paged run asserts
# its live-heap ceiling in-test; GOMEMLIMIT pins the runtime's GC
# target just above that ceiling so quiet heap growth degrades into GC
# thrash and a visibly slow (or failed) run instead of passing on a
# big-RAM host.
GOMEMLIMIT=512MiB go test -run 'TestMillionAccountsPagedBudget' -timeout 20m ./internal/store/
# Short fuzz run of the wire decoders beyond the committed corpus —
# including the store's snapshot/journal record types — no decoder may
# panic on hostile bytes, and decode∘encode must stay a fixed point.
go test -fuzz=FuzzDecoders -fuzztime=10s ./internal/wire/
# Smoke-test the closed-loop admission path end to end through the CLI.
go run ./cmd/shardsim -submit-rate 200 -mempool-cap 1024 -epochs 3 -workloads "FT transfer"
# Smoke-test the intra-shard parallel executor on the commuting
# workload it is built for.
go run ./cmd/shardsim -intra-parallel 4 -epochs 3 -workloads "FT transfer disjoint"
# Chaos smoke: deterministic fault injection (crashes, drops,
# stragglers) through the closed loop, under the race detector so the
# recovery paths (requeue, view change, escalation) are exercised with
# the parallel executors on.
go run -race ./cmd/shardsim -submit-rate 200 -mempool-cap 1024 -epochs 4 -parallel -intra-parallel 4 \
    -workloads "FT transfer" -faults "7:crash=0.1,drop=0.05,corrupt=0.02,straggle=0.25x4"
# Compiled-execution coverage: the closure-chain executor is the
# default engine (exercised by every run above, including the race
# runs); this pair smoke-tests the interpreter escape hatch and pins
# both engines on the same workload. Compiled-vs-interpreted
# equivalence itself is enforced by the differential suites in
# internal/scilla/compile and internal/shard.
go run -race ./cmd/shardsim -parallel -epochs 3 -workloads "FT transfer"
go run ./cmd/shardsim -no-compile -epochs 3 -workloads "FT transfer"
# Restart-recovery smoke through the CLI: a fresh persistent run
# prints its final chain head; a recover-only restart (-epochs 0) must
# land on the identical root. Then a run is killed with SIGKILL
# mid-flight: the journal is fsynced every committed epoch, so
# recovery must come back cleanly (torn tail truncated at the last
# good frame) and two consecutive recoveries must agree.
go build -o /tmp/cosplit-shardsim ./cmd/shardsim
STATE_DIR=$(mktemp -d)
FINAL=$(/tmp/cosplit-shardsim -state-dir "$STATE_DIR" -workloads "FT transfer" -submit-rate 200 -epochs 4 | grep '^state: final')
RECOVERED=$(/tmp/cosplit-shardsim -state-dir "$STATE_DIR" -workloads "FT transfer" -epochs 0 | grep '^state: recovered')
[ "${FINAL#state: final }" = "${RECOVERED#state: recovered }" ]
/tmp/cosplit-shardsim -state-dir "$STATE_DIR" -workloads "FT transfer" -submit-rate 200 -epochs 100000 &
KILL_PID=$!
sleep 2
kill -9 $KILL_PID
wait $KILL_PID || true
R1=$(/tmp/cosplit-shardsim -state-dir "$STATE_DIR" -workloads "FT transfer" -epochs 0 | grep '^state: recovered')
R2=$(/tmp/cosplit-shardsim -state-dir "$STATE_DIR" -workloads "FT transfer" -epochs 0 | grep '^state: recovered')
[ "$R1" = "$R2" ]
rm -rf "$STATE_DIR"
# Paged-state smoke: the same restart-recovery and SIGKILL checks with
# canonical state behind a deliberately tiny disk-backed page cache
# (-state-budget 1MiB): the paged run must finish on the identical
# root the fully resident run above printed (bit-identical execution),
# recover to it from pages with a cold cache, and survive a SIGKILL
# mid-flight — dirty pages are only published by the atomic index
# commit, so recovery lands on the last flushed checkpoint plus the
# journal tail, and two consecutive recoveries agree.
PAGED_DIR=$(mktemp -d)
FINAL_P=$(/tmp/cosplit-shardsim -state-dir "$PAGED_DIR" -state-budget 1048576 -workloads "FT transfer" -submit-rate 200 -epochs 4 | grep '^state: final')
[ "${FINAL_P#state: final }" = "${FINAL#state: final }" ]
RECOVERED_P=$(/tmp/cosplit-shardsim -state-dir "$PAGED_DIR" -state-budget 1048576 -workloads "FT transfer" -epochs 0 | grep '^state: recovered')
[ "${FINAL_P#state: final }" = "${RECOVERED_P#state: recovered }" ]
/tmp/cosplit-shardsim -state-dir "$PAGED_DIR" -state-budget 1048576 -workloads "FT transfer" -submit-rate 200 -epochs 100000 &
KILL_PID=$!
sleep 2
kill -9 $KILL_PID
wait $KILL_PID || true
P1=$(/tmp/cosplit-shardsim -state-dir "$PAGED_DIR" -state-budget 1048576 -workloads "FT transfer" -epochs 0 | grep '^state: recovered')
P2=$(/tmp/cosplit-shardsim -state-dir "$PAGED_DIR" -state-budget 1048576 -workloads "FT transfer" -epochs 0 | grep '^state: recovered')
[ "$P1" = "$P2" ]
rm -rf "$PAGED_DIR"
# Node-mode smoke: boot the JSON-RPC front door over a cluster whose
# internal traffic runs on real TCP sockets, hammer it closed-loop,
# and require every transaction to commit with a receipt. The final
# state root is captured as the yardstick for the multi-process run
# below: the committed transaction set alone determines the root, so
# any topology pushing the same 300 transactions must land on it.
/tmp/cosplit-shardsim -serve 127.0.0.1:18545 -serve-tcp 127.0.0.1:0 -block-interval 50ms &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
sleep 2
HAMMER_OUT=$(/tmp/cosplit-shardsim -hammer http://127.0.0.1:18545 -hammer-n 300 -hammer-workers 8)
echo "$HAMMER_OUT"
echo "$HAMMER_OUT" | grep -q '300 submitted, 300 committed, 0 failed, 0 rejected, 0 lost'
SINGLE_ROOT=$(/tmp/cosplit-shardsim -chain-info http://127.0.0.1:18545 | sed 's/.*root=//')
kill $SERVE_PID

# Multi-process chaos smoke: every cluster actor as its own OS process
# over the TCP hub — hub, DS committee, three shard replicas with
# per-role state directories, and two lookups each serving JSON-RPC —
# hammered round-robin across both lookups. Mid-run one shard replica
# is SIGKILLed and restarted: it must recover from its own directory,
# re-register with the hub, and resync the missed FinalBlocks over the
# wire (MsgBlockRequest), so the hammer still commits all 300 and
# every role — both lookups and, after SIGTERM, the committee and all
# three replicas — reports the single-process run's exact root.
NODE_DIR=$(mktemp -d)
HUB=127.0.0.1:19100
LK0=127.0.0.1:19101
LK1=127.0.0.1:19102
/tmp/cosplit-shardsim -node hub -hub $HUB >"$NODE_DIR/hub.out" 2>&1 &
HUB_PID=$!
/tmp/cosplit-shardsim -node ds -hub $HUB -state-dir "$NODE_DIR" -block-interval 50ms >"$NODE_DIR/ds.out" 2>&1 &
DS_PID=$!
/tmp/cosplit-shardsim -node shard:0 -hub $HUB -state-dir "$NODE_DIR" >"$NODE_DIR/shard0.out" 2>&1 &
S0_PID=$!
/tmp/cosplit-shardsim -node shard:1 -hub $HUB -state-dir "$NODE_DIR" >"$NODE_DIR/shard1.out" 2>&1 &
S1_PID=$!
/tmp/cosplit-shardsim -node shard:2 -hub $HUB -state-dir "$NODE_DIR" >"$NODE_DIR/shard2.out" 2>&1 &
S2_PID=$!
/tmp/cosplit-shardsim -node lookup -hub $HUB -serve $LK0 >"$NODE_DIR/lookup0.out" 2>&1 &
L0_PID=$!
/tmp/cosplit-shardsim -node lookup:1 -hub $HUB -serve $LK1 >"$NODE_DIR/lookup1.out" 2>&1 &
L1_PID=$!
trap 'kill $HUB_PID $DS_PID $S0_PID $S1_PID $S2_PID $L0_PID $L1_PID 2>/dev/null || true' EXIT
sleep 2
/tmp/cosplit-shardsim -hammer "http://$LK0,http://$LK1" -hammer-n 300 -hammer-workers 8 >"$NODE_DIR/hammer.out" 2>&1 &
HAMMER_PID=$!
sleep 1
kill -9 $S1_PID
wait $S1_PID || true
sleep 1
/tmp/cosplit-shardsim -node shard:1 -hub $HUB -state-dir "$NODE_DIR" >>"$NODE_DIR/shard1.out" 2>&1 &
S1_PID=$!
wait $HAMMER_PID
cat "$NODE_DIR/hammer.out"
grep -q '300 submitted, 300 committed, 0 failed, 0 rejected, 0 lost' "$NODE_DIR/hammer.out"
# The replica recovered twice: once at boot, once after the SIGKILL —
# the second recovery is behind the committee and catches the tail up
# over the wire (proved by the root checks below).
[ "$(grep -c 'shard-1 recovered' "$NODE_DIR/shard1.out")" -ge 2 ]
sleep 1
[ "$(/tmp/cosplit-shardsim -chain-info http://$LK0 | sed 's/.*root=//')" = "$SINGLE_ROOT" ]
[ "$(/tmp/cosplit-shardsim -chain-info http://$LK1 | sed 's/.*root=//')" = "$SINGLE_ROOT" ]
kill $DS_PID $S0_PID $S1_PID $S2_PID $L0_PID $L1_PID
wait $DS_PID $S0_PID $S1_PID $S2_PID $L0_PID $L1_PID || true
for role in ds shard0 shard1 shard2; do
    [ "$(grep '^node: final' "$NODE_DIR/$role.out" | tail -1 | sed 's/.*root=//')" = "$SINGLE_ROOT" ]
done
kill $HUB_PID
wait $HUB_PID || true
rm -rf "$NODE_DIR"
# After regenerating BENCH_epoch.json or BENCH_state.json,
# scripts/benchdiff.sh OLD NEW fails on a >10% regression of the
# report's gating metric (1-shard sequential execute_max, or the
# default-budget paged TPS).
