#!/usr/bin/env sh
# benchdiff.sh OLD.json NEW.json [threshold_pct]
#
# Compares two benchmark reports of the same schema and fails (exit 1)
# on a regression of more than threshold_pct percent (default 10):
#
#   BENCH_epoch.json  — the 1-shard sequential execute_max may not grow
#                       past the threshold (execution-engine slowdown).
#   BENCH_state.json  — the committed TPS of the worst paged cell at
#                       the default budget may not shrink past the
#                       threshold (paging overhead regression).
#
# Run after regenerating either report:
#
#   cp BENCH_epoch.json /tmp/prev.json
#   go run ./cmd/shardsim -epoch-bench -bench-out BENCH_epoch.json
#   scripts/benchdiff.sh /tmp/prev.json BENCH_epoch.json
#
#   cp BENCH_state.json /tmp/prev.json
#   go run ./cmd/shardsim -state-bench -bench-out BENCH_state.json
#   scripts/benchdiff.sh /tmp/prev.json BENCH_state.json
set -eu

OLD=${1:?usage: benchdiff.sh OLD.json NEW.json [threshold_pct]}
NEW=${2:?usage: benchdiff.sh OLD.json NEW.json [threshold_pct]}
THRESHOLD=${3:-10}
SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

# extract FILE: "<kind> <value>" — kind exec_max (lower is better) or
# state_tps (higher is better), chosen by the report's schema field.
extract() {
    go run "$SCRIPT_DIR/benchdiff_extract.go" "$1"
}

OLD_OUT=$(extract "$OLD")
NEW_OUT=$(extract "$NEW")
OLD_KIND=${OLD_OUT%% *}; OLD_VAL=${OLD_OUT#* }
NEW_KIND=${NEW_OUT%% *}; NEW_VAL=${NEW_OUT#* }

if [ "$OLD_KIND" != "$NEW_KIND" ]; then
    echo "benchdiff: schema mismatch: $OLD is $OLD_KIND, $NEW is $NEW_KIND" >&2
    exit 2
fi

case "$OLD_KIND" in
exec_max)
    echo "benchdiff: 1-shard sequential execute_max: old=${OLD_VAL}ms new=${NEW_VAL}ms (threshold +${THRESHOLD}%)"
    # Fail when NEW > OLD * (1 + THRESHOLD/100).
    awk -v old="$OLD_VAL" -v new="$NEW_VAL" -v thr="$THRESHOLD" 'BEGIN {
        limit = old * (1 + thr / 100)
        if (new > limit) {
            printf "benchdiff: REGRESSION: execute_max %.3fms exceeds %.3fms (+%s%% over %.3fms)\n", new, limit, thr, old
            exit 1
        }
        printf "benchdiff: OK (limit %.3fms)\n", limit
    }'
    ;;
state_tps)
    echo "benchdiff: default-budget paged TPS (worst cell): old=${OLD_VAL} new=${NEW_VAL} (threshold -${THRESHOLD}%)"
    # Fail when NEW < OLD * (1 - THRESHOLD/100).
    awk -v old="$OLD_VAL" -v new="$NEW_VAL" -v thr="$THRESHOLD" 'BEGIN {
        limit = old * (1 - thr / 100)
        if (new < limit) {
            printf "benchdiff: REGRESSION: paged TPS %.0f fell below %.0f (-%s%% of %.0f)\n", new, limit, thr, old
            exit 1
        }
        printf "benchdiff: OK (floor %.0f)\n", limit
    }'
    ;;
*)
    echo "benchdiff: unknown metric kind $OLD_KIND" >&2
    exit 2
    ;;
esac
