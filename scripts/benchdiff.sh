#!/usr/bin/env sh
# benchdiff.sh OLD.json NEW.json [threshold_pct]
#
# Compares two BENCH_epoch.json reports and fails (exit 1) when the
# new report's 1-shard sequential execute_max regressed by more than
# threshold_pct percent (default 10) over the old one. Run after
# regenerating BENCH_epoch.json to catch execution-engine slowdowns:
#
#   cp BENCH_epoch.json /tmp/prev.json
#   go run ./cmd/shardsim -epoch-bench -bench-out BENCH_epoch.json
#   scripts/benchdiff.sh /tmp/prev.json BENCH_epoch.json
set -eu

OLD=${1:?usage: benchdiff.sh OLD.json NEW.json [threshold_pct]}
NEW=${2:?usage: benchdiff.sh OLD.json NEW.json [threshold_pct]}
THRESHOLD=${3:-10}
SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

# extract_exec_max FILE: the execute_max of the 1-shard sequential row
# (shards=1, parallel=false, intra_workers=0) — the reference cost of
# pure transition execution, insensitive to host core count.
extract_exec_max() {
    go run "$SCRIPT_DIR/benchdiff_extract.go" "$1"
}

OLD_MS=$(extract_exec_max "$OLD")
NEW_MS=$(extract_exec_max "$NEW")

echo "benchdiff: 1-shard sequential execute_max: old=${OLD_MS}ms new=${NEW_MS}ms (threshold +${THRESHOLD}%)"

# Fail when NEW > OLD * (1 + THRESHOLD/100).
awk -v old="$OLD_MS" -v new="$NEW_MS" -v thr="$THRESHOLD" 'BEGIN {
    limit = old * (1 + thr / 100)
    if (new > limit) {
        printf "benchdiff: REGRESSION: execute_max %.3fms exceeds %.3fms (+%s%% over %.3fms)\n", new, limit, thr, old
        exit 1
    }
    printf "benchdiff: OK (limit %.3fms)\n", limit
}'
